#include "tline/step_response.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/interpolate.h"
#include "numeric/roots.h"

namespace rlcsim::tline {

double step_response_at(const GateLineLoad& system, double t,
                        const numeric::EulerOptions& opt) {
  validate(system);
  if (!(t > 0.0)) return 0.0;
  const auto f = [&](Complex s) { return transfer_exact(system, s) / s; };
  return numeric::invert_euler(f, t, opt);
}

SampledResponse step_response(const GateLineLoad& system, double t_end, int samples,
                              const numeric::EulerOptions& opt) {
  validate(system);
  if (!(t_end > 0.0)) throw std::invalid_argument("step_response: t_end must be > 0");
  if (samples < 2) throw std::invalid_argument("step_response: need >= 2 samples");
  const auto f = [&](Complex s) { return transfer_exact(system, s) / s; };

  SampledResponse out;
  out.time.reserve(samples);
  out.value.reserve(samples);
  for (int i = 1; i <= samples; ++i) {
    const double t = t_end * static_cast<double>(i) / samples;
    out.time.push_back(t);
    out.value.push_back(numeric::invert_euler(f, t, opt));
  }
  return out;
}

double threshold_delay(const GateLineLoad& system, double threshold,
                       const numeric::EulerOptions& opt) {
  validate(system);
  if (!(threshold > 0.0 && threshold < 1.0))
    throw std::invalid_argument("threshold_delay: threshold must be in (0,1)");

  // Time-scale estimate: the response must cross by a few Elmore delays or a
  // few flight times, whichever dominates.
  const DenominatorMoments m = moments(system);
  const double tof = std::sqrt(system.line.total_inductance *
                               (system.line.total_capacitance + system.load_capacitance));
  double horizon = 6.0 * std::max(m.b1, tof);

  const auto v = [&](double t) { return step_response_at(system, t, opt); };

  // Coarse forward scan to find the FIRST sub-interval containing a rising
  // crossing; expand the horizon if the response is slower than estimated.
  constexpr int kScan = 200;
  for (int expansion = 0; expansion < 8; ++expansion) {
    double prev_t = horizon * 1e-6;  // avoid t = 0 (inversion requires t > 0)
    double prev_v = v(prev_t);
    for (int i = 1; i <= kScan; ++i) {
      const double t = horizon * static_cast<double>(i) / kScan;
      const double vi = v(t);
      if (prev_v < threshold && vi >= threshold) {
        return numeric::brent([&](double tt) { return v(tt) - threshold; }, prev_t, t,
                              {.x_tolerance = horizon * 1e-12});
      }
      prev_t = t;
      prev_v = vi;
    }
    horizon *= 4.0;
  }
  throw std::runtime_error("threshold_delay: response never crossed the threshold");
}

StepMetrics measure_step(const std::vector<double>& time,
                         const std::vector<double>& value, double final_value) {
  if (time.size() != value.size() || time.size() < 2)
    throw std::invalid_argument("measure_step: bad sample arrays");
  if (final_value == 0.0)
    throw std::invalid_argument("measure_step: final_value must be nonzero");

  StepMetrics metrics;
  const auto cross = [&](double frac) {
    return numeric::find_crossing(time, value, frac * final_value, time.front(), +1);
  };
  const auto t50 = cross(0.5);
  if (!t50)
    throw std::runtime_error("measure_step: waveform never reaches 50% of final value");
  metrics.delay_50 = *t50;

  const auto t10 = cross(0.1);
  const auto t90 = cross(0.9);
  if (t10 && t90) metrics.rise_10_90 = *t90 - *t10;

  double peak = value.front();
  for (double x : value) peak = std::max(peak, x);
  metrics.overshoot = std::max(0.0, peak / final_value - 1.0);

  // Settling: the first re-entry into the 2% band after the LAST violation
  // (the last out-of-band sample itself is one sample too early).
  const double band = 0.02 * std::fabs(final_value);
  std::optional<std::size_t> last_violation;
  for (std::size_t i = 0; i < time.size(); ++i)
    if (std::fabs(value[i] - final_value) > band) last_violation = i;
  if (!last_violation) {
    metrics.settle_2pct = time.front();
  } else if (*last_violation + 1 < time.size()) {
    // Interpolate the band-edge crossing between the last out-of-band sample
    // and the in-band sample that follows it.
    const std::size_t i = *last_violation;
    const double edge =
        value[i] > final_value ? final_value + band : final_value - band;
    const double dv = value[i + 1] - value[i];
    const double frac = dv == 0.0 ? 1.0 : (edge - value[i]) / dv;
    metrics.settle_2pct = time[i] + frac * (time[i + 1] - time[i]);
  }
  // else: still outside the band at the end of the record -> unsettled (nullopt).
  return metrics;
}

}  // namespace rlcsim::tline
