// RC-only interconnect models — the baselines the paper compares against.
//
//  * Elmore delay (first moment; [13] in the paper)
//  * Sakurai's fitted 50% delay for distributed RC lines ([3])
//  * the exact distributed-RC step response, two independent ways:
//    a modal (eigenfunction) series for the driverless open-ended line, and
//    Gaver–Stehfest inversion of the exact transfer function for the general
//    driver + load case (RC responses are monotone, Stehfest's sweet spot).
#pragma once

#include <vector>

#include "tline/transfer.h"

namespace rlcsim::tline {

// Elmore (first-moment) delay of driver + distributed RC line + load:
//   TD = Rtr (Ct + CL) + Rt (Ct/2 + CL).
double elmore_delay(double rtr, double rt, double ct, double cl);

// Sakurai's fitted 50% delay for the same structure:
//   t50 ≈ 0.377 Rt Ct + 0.693 (Rtr Ct + Rtr CL + Rt CL).
// For Rtr = CL = 0 this is the paper's quoted 0.37 R C l^2 limit (we keep
// Sakurai's 0.377 and expose the paper's rounded coefficient separately).
double sakurai_delay(double rtr, double rt, double ct, double cl);

// The paper's RC limiting form of eq. (9): 0.37 Rt Ct (bare line).
double paper_rc_limit(double rt, double ct);

// Exact far-end step response of a bare distributed RC line (no driver
// resistance, open far end) from the eigenfunction series
//   v(t) = 1 - sum_n 2 (-1)^n / mu_n * exp(-mu_n^2 t / (Rt Ct)),
//   mu_n = (n + 1/2) pi.
// `terms` controls truncation; the series alternates and converges fast for
// t / RtCt > ~0.02.
double rc_modal_step(double rt, double ct, double t, int terms = 64);

// First time rc_modal_step reaches `threshold` (fraction of the final unit
// value). The exact coefficient of Rt Ct for threshold = 0.5 is ~0.3786.
double rc_modal_delay(double rt, double ct, double threshold = 0.5);

// Exact 50% (or other threshold) delay of driver + distributed RC + load via
// Stehfest inversion of the exact transfer function. The reference the RC
// formulas are tested against.
double rc_exact_delay(double rtr, double rt, double ct, double cl,
                      double threshold = 0.5);

}  // namespace rlcsim::tline
