#include "tline/rlc.h"

#include <cmath>
#include <stdexcept>

#include "numeric/units.h"

namespace rlcsim::tline {

double PerUnitLength::lossless_z0() const {
  if (capacitance <= 0.0)
    throw std::invalid_argument("PerUnitLength::lossless_z0: capacitance <= 0");
  return std::sqrt(inductance / capacitance);
}

double PerUnitLength::velocity() const {
  if (inductance <= 0.0 || capacitance <= 0.0)
    throw std::invalid_argument("PerUnitLength::velocity: needs L > 0 and C > 0");
  return 1.0 / std::sqrt(inductance * capacitance);
}

LineParams LineParams::section(int sections) const {
  if (sections < 1)
    throw std::invalid_argument("LineParams::section: sections must be >= 1");
  const double k = static_cast<double>(sections);
  return {total_resistance / k, total_inductance / k, total_capacitance / k};
}

double LineParams::time_of_flight() const {
  return std::sqrt(total_inductance * total_capacitance);
}

double LineParams::rc_time() const { return total_resistance * total_capacitance; }

double LineParams::intrinsic_damping() const {
  if (total_inductance <= 0.0)
    throw std::invalid_argument("intrinsic_damping: Lt must be > 0 (RC line is the limit zeta -> inf)");
  return 0.25 * total_resistance * std::sqrt(total_capacitance / total_inductance);
}

LineParams make_line(const PerUnitLength& pul, double length_m) {
  if (!(length_m > 0.0)) throw std::invalid_argument("make_line: length must be > 0");
  return {pul.resistance * length_m, pul.inductance * length_m,
          pul.capacitance * length_m};
}

namespace {

void check_common(const LineParams& line) {
  if (!std::isfinite(line.total_resistance) || line.total_resistance < 0.0)
    throw std::invalid_argument("LineParams: total_resistance must be finite and >= 0");
  if (!std::isfinite(line.total_capacitance) || line.total_capacitance <= 0.0)
    throw std::invalid_argument("LineParams: total_capacitance must be finite and > 0");
  if (!std::isfinite(line.total_inductance))
    throw std::invalid_argument("LineParams: total_inductance must be finite");
}

}  // namespace

void validate(const LineParams& line) {
  check_common(line);
  if (line.total_inductance <= 0.0)
    throw std::invalid_argument("LineParams: total_inductance must be > 0 (use validate_rc for RC lines)");
}

void validate_rc(const LineParams& line) {
  check_common(line);
  if (line.total_inductance < 0.0)
    throw std::invalid_argument("LineParams: total_inductance must be >= 0");
}

std::string describe(const LineParams& line) {
  using rlcsim::units::eng;
  std::string out = "Rt=" + eng(line.total_resistance, "ohm") +
                    ", Lt=" + eng(line.total_inductance, "H") +
                    ", Ct=" + eng(line.total_capacitance, "F");
  if (line.total_inductance > 0.0) {
    out += ", tof=" + eng(line.time_of_flight(), "s") +
           ", zeta0=" + eng(line.intrinsic_damping(), "");
  }
  return out;
}

}  // namespace rlcsim::tline
