#include "tline/two_port.h"

#include <cmath>

namespace rlcsim::tline {

Abcd Abcd::cascade(const Abcd& rhs) const {
  return {a * rhs.a + b * rhs.c, a * rhs.b + b * rhs.d, c * rhs.a + d * rhs.c,
          c * rhs.b + d * rhs.d};
}

Abcd series_impedance(Complex z) { return {1.0, z, 0.0, 1.0}; }

Abcd shunt_admittance(Complex y) { return {1.0, 0.0, y, 1.0}; }

Abcd series_resistor(double r) { return series_impedance(Complex(r, 0.0)); }

Abcd series_inductor(double l, Complex s) { return series_impedance(s * l); }

Abcd shunt_capacitor(double c, Complex s) { return shunt_admittance(s * c); }

namespace {

// sinh(theta)/theta with a series fallback for tiny |theta| where the direct
// quotient loses precision.
Complex sinhc(Complex theta) {
  if (std::abs(theta) < 1e-6) {
    const Complex t2 = theta * theta;
    return 1.0 + t2 / 6.0 + t2 * t2 / 120.0;
  }
  return std::sinh(theta) / theta;
}

}  // namespace

Abcd distributed_line(const LineParams& line, Complex s, double total_conductance) {
  // Series impedance and shunt admittance of the whole line.
  const Complex z = Complex(line.total_resistance, 0.0) + s * line.total_inductance;
  const Complex y = Complex(total_conductance, 0.0) + s * line.total_capacitance;
  const Complex theta = std::sqrt(z * y);

  const Complex cosh_theta = std::cosh(theta);
  const Complex shc = sinhc(theta);
  // B = z0 sinh(theta) = z * sinh(theta)/theta, C = y * sinh(theta)/theta —
  // these forms stay finite as y -> 0 or z -> 0 (no explicit z0).
  return {cosh_theta, z * shc, y * shc, cosh_theta};
}

Abcd lumped_pi_segment(const LineParams& segment, Complex s) {
  const Complex half_shunt = s * (segment.total_capacitance / 2.0);
  const Complex series =
      Complex(segment.total_resistance, 0.0) + s * segment.total_inductance;
  return shunt_admittance(half_shunt)
      .cascade(series_impedance(series))
      .cascade(shunt_admittance(half_shunt));
}

Abcd lumped_ladder(const LineParams& line, int segments, Complex s) {
  const LineParams seg = line.section(segments);
  const Abcd one = lumped_pi_segment(seg, s);
  // Repeated squaring over the segment count.
  Abcd acc;  // identity
  Abcd base = one;
  int n = segments;
  while (n > 0) {
    if (n & 1) acc = acc.cascade(base);
    base = base.cascade(base);
    n >>= 1;
  }
  return acc;
}

Complex terminated_transfer(const Abcd& network, Complex source_impedance,
                            Complex load_admittance) {
  // Guard against overflow in cosh/sinh at huge |theta| (deep-attenuation
  // limit): inf * 0 products would otherwise poison the sum with NaN. The
  // physical transfer in that limit is 0.
  auto safe_product = [](Complex a, Complex b) -> Complex {
    if (b == Complex(0.0, 0.0) || a == Complex(0.0, 0.0)) return {0.0, 0.0};
    return a * b;
  };
  const Complex denom = network.a + safe_product(network.b, load_admittance) +
                        safe_product(source_impedance, network.c) +
                        safe_product(safe_product(source_impedance, network.d),
                                     load_admittance);
  if (!std::isfinite(denom.real()) || !std::isfinite(denom.imag())) return {0.0, 0.0};
  return 1.0 / denom;
}

}  // namespace rlcsim::tline
