// Time-domain step response of the exact distributed system via numerical
// Laplace inversion, plus waveform measurements on analytic responses.
//
// This module is one of the two independent reference implementations the
// closed-form model is judged against (the other is the MNA transient
// simulator in sim/). For a unit step input, the far-end voltage is
//   vout(t) = L^-1 { H(s) / s } (t).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "numeric/laplace.h"
#include "tline/transfer.h"

namespace rlcsim::tline {

// Far-end voltage at time t for a unit step applied at t = 0.
double step_response_at(const GateLineLoad& system, double t,
                        const numeric::EulerOptions& opt = {});

// Sampled response on a uniform grid of `samples` points over (0, t_end].
struct SampledResponse {
  std::vector<double> time;
  std::vector<double> value;
};
SampledResponse step_response(const GateLineLoad& system, double t_end, int samples,
                              const numeric::EulerOptions& opt = {});

// 50% (or arbitrary-threshold) delay of the exact system, found by root
// search on the inverted response. `threshold` is a fraction of the final
// value (which is 1 for a unit step into a capacitive load).
//
// Underdamped responses cross the threshold multiple times; the *first*
// crossing is the propagation delay, and the root search is seeded by a
// coarse forward scan to guarantee it brackets the first crossing.
double threshold_delay(const GateLineLoad& system, double threshold = 0.5,
                       const numeric::EulerOptions& opt = {});

// Measurements on an arbitrary sampled waveform (shared with the simulator's
// waveforms through sim/waveform.h, which re-exports richer variants).
// Optional fields are absent — never 0 — when the record does not contain
// the event: rise_10_90 when the waveform never reaches the 10% or 90%
// level, settle_2pct when the record ends outside the 2% band.
struct StepMetrics {
  double delay_50 = 0.0;               // first 50% crossing, s
  std::optional<double> rise_10_90;    // 10% -> 90% rise time, if reached
  double overshoot = 0.0;              // max(v) - 1, clamped at 0
  std::optional<double> settle_2pct;   // first re-entry into the 2% band
                                       // after the last violation, if settled
};
StepMetrics measure_step(const std::vector<double>& time,
                         const std::vector<double>& value, double final_value = 1.0);

}  // namespace rlcsim::tline
