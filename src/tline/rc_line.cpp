#include "tline/rc_line.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "numeric/laplace.h"
#include "numeric/roots.h"

namespace rlcsim::tline {

double elmore_delay(double rtr, double rt, double ct, double cl) {
  return rtr * (ct + cl) + rt * (ct / 2.0 + cl);
}

double sakurai_delay(double rtr, double rt, double ct, double cl) {
  return 0.377 * rt * ct + 0.693 * (rtr * ct + rtr * cl + rt * cl);
}

double paper_rc_limit(double rt, double ct) { return 0.37 * rt * ct; }

double rc_modal_step(double rt, double ct, double t, int terms) {
  if (!(rt > 0.0 && ct > 0.0))
    throw std::invalid_argument("rc_modal_step: rt and ct must be > 0");
  if (t <= 0.0) return 0.0;
  const double tau = rt * ct;
  double v = 1.0;
  for (int n = 0; n < terms; ++n) {
    const double mu = (n + 0.5) * std::numbers::pi;
    const double term = 2.0 / mu * std::exp(-mu * mu * t / tau);
    v -= (n % 2 == 0) ? term : -term;
    if (term < 1e-16) break;
  }
  return v;
}

double rc_modal_delay(double rt, double ct, double threshold) {
  if (!(threshold > 0.0 && threshold < 1.0))
    throw std::invalid_argument("rc_modal_delay: threshold must be in (0,1)");
  const double tau = rt * ct;
  // The response is monotone; bracket between 1e-4 and 5 time constants.
  return numeric::brent(
      [&](double t) { return rc_modal_step(rt, ct, t) - threshold; }, 1e-4 * tau,
      5.0 * tau, {.x_tolerance = tau * 1e-14});
}

double rc_exact_delay(double rtr, double rt, double ct, double cl, double threshold) {
  if (!(rt > 0.0 && ct > 0.0))
    throw std::invalid_argument("rc_exact_delay: rt and ct must be > 0");
  if (!(threshold > 0.0 && threshold < 1.0))
    throw std::invalid_argument("rc_exact_delay: threshold must be in (0,1)");

  // RC responses are real-axis smooth: use the distributed-line ABCD with
  // Lt = 0 under Gaver–Stehfest.
  const GateLineLoad sys{rtr, LineParams{rt, 0.0, ct}, cl};
  const auto v = [&](double t) {
    return numeric::invert_stehfest(
        [&](double s_real) {
          const Complex s(s_real, 0.0);
          const Abcd line = distributed_line(sys.line, s);
          const Complex h = terminated_transfer(
              line, Complex(sys.driver_resistance, 0.0), s * sys.load_capacitance);
          return std::real(h) / s_real;
        },
        t);
  };

  const double tau = elmore_delay(rtr, rt, ct, cl);
  // Monotone rise: expand until bracketed, then Brent. The lower bound stays
  // clear of the deep-attenuation region where the response underflows.
  double hi = tau;
  for (int i = 0; i < 60 && v(hi) < threshold; ++i) hi *= 1.6;
  double lo = 1e-3 * tau;
  while (v(lo) >= threshold && lo > 1e-12 * tau) lo *= 0.1;
  return numeric::brent([&](double t) { return v(t) - threshold; }, lo, hi,
                        {.x_tolerance = tau * 1e-12});
}

}  // namespace rlcsim::tline
