// Interconnect parasitic parameter types.
//
// Two views of the same wire:
//  * `PerUnitLength` — R, L, C (and optionally G) per meter, as produced by
//    extraction (tech layer) or quoted in papers;
//  * `LineParams` — the totals Rt = R*l, Lt = L*l, Ct = C*l used by the
//    delay model and the repeater formulas (the paper works in totals).
#pragma once

#include <string>

namespace rlcsim::tline {

// Parasitics per meter of wire. Shunt conductance G is carried for
// completeness (lossy dielectrics) but the DAC-99 model assumes G = 0.
struct PerUnitLength {
  double resistance = 0.0;   // ohm / m
  double inductance = 0.0;   // H / m
  double capacitance = 0.0;  // F / m
  double conductance = 0.0;  // S / m

  // Characteristic impedance sqrt(L/C) of the lossless limit, ohms.
  double lossless_z0() const;
  // Propagation velocity 1/sqrt(LC) of the lossless limit, m/s.
  double velocity() const;
};

// Total parasitics of one line (or one repeater section).
struct LineParams {
  double total_resistance = 0.0;   // Rt, ohm
  double total_inductance = 0.0;   // Lt, H
  double total_capacitance = 0.0;  // Ct, F

  // Scales totals for a line cut into `sections` equal pieces: each piece has
  // Rt/k, Lt/k, Ct/k (paper, Fig. 3).
  LineParams section(int sections) const;

  // Time of flight sqrt(Lt Ct) — the R->0 delay limit.
  double time_of_flight() const;
  // Intrinsic RC time constant Rt Ct — sets the R-dominated scale.
  double rc_time() const;
  // Damping factor of the bare line (no driver, no load): zeta with
  // RT = CT = 0, i.e. (Rt/4) sqrt(Ct/Lt). > 1 means overdamped.
  double intrinsic_damping() const;
};

// Builds totals from per-unit-length values and a length in meters.
LineParams make_line(const PerUnitLength& pul, double length_m);

// Throws std::invalid_argument (with the offending field named) unless all
// parameters are finite, C > 0, L > 0 (use validate_rc for L == 0 lines) and
// R >= 0.
void validate(const LineParams& line);
// Same but permits Lt == 0 (pure RC line).
void validate_rc(const LineParams& line);

// Human-readable one-line summary, e.g. for example programs.
std::string describe(const LineParams& line);

}  // namespace rlcsim::tline
