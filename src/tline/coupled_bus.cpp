#include "tline/coupled_bus.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numbers>
#include <stdexcept>
#include <string>

#include "numeric/units.h"

namespace rlcsim::tline {

const LineParams& CoupledBus::line_at(int i) const {
  if (i < 0 || i >= lines)
    throw std::invalid_argument("CoupledBus::line_at: index out of range");
  return heterogeneous() ? line_params[static_cast<std::size_t>(i)] : line;
}

double CoupledBus::pair_cc(int j) const {
  if (j < 0 || j + 1 >= lines)
    throw std::invalid_argument("CoupledBus::pair_cc: index out of range");
  return heterogeneous() ? pair_capacitance[static_cast<std::size_t>(j)]
                         : coupling_capacitance;
}

double CoupledBus::pair_lm(int j) const {
  if (j < 0 || j + 1 >= lines)
    throw std::invalid_argument("CoupledBus::pair_lm: index out of range");
  return heterogeneous() ? pair_inductance[static_cast<std::size_t>(j)]
                         : mutual_inductance;
}

double CoupledBus::coupling_cc(int i, int j) const {
  if (i < 0 || j < 0 || i >= lines || j >= lines || i == j)
    throw std::invalid_argument("CoupledBus::coupling_cc: bad line pair");
  if (full_coupling())
    return full_cc.rows() > 0 ? full_cc(static_cast<std::size_t>(i),
                                        static_cast<std::size_t>(j))
                              : 0.0;
  return std::abs(i - j) == 1 ? pair_cc(std::min(i, j)) : 0.0;
}

double CoupledBus::coupling_lm(int i, int j) const {
  if (i < 0 || j < 0 || i >= lines || j >= lines || i == j)
    throw std::invalid_argument("CoupledBus::coupling_lm: bad line pair");
  if (full_coupling())
    return full_lm.rows() > 0 ? full_lm(static_cast<std::size_t>(i),
                                        static_cast<std::size_t>(j))
                              : 0.0;
  return std::abs(i - j) == 1 ? pair_lm(std::min(i, j)) : 0.0;
}

double CoupledBus::cc_ratio() const {
  return coupling_capacitance / line.total_capacitance;
}

double CoupledBus::lm_ratio() const {
  return mutual_inductance / line.total_inductance;
}

CoupledBus make_bus(int lines, const LineParams& line, double cc_ratio,
                    double lm_ratio) {
  CoupledBus bus;
  bus.lines = lines;
  bus.line = line;
  bus.coupling_capacitance = cc_ratio * line.total_capacitance;
  bus.mutual_inductance = lm_ratio * line.total_inductance;
  validate(bus);
  return bus;
}

CoupledBus make_bus(const std::vector<LineParams>& lines,
                    const std::vector<double>& pair_cc,
                    const std::vector<double>& pair_lm) {
  if (lines.size() < 2)
    throw std::invalid_argument("make_bus: need at least 2 lines");
  CoupledBus bus;
  bus.lines = static_cast<int>(lines.size());
  bus.line = lines.front();  // scalar mirrors for uniform-only readers
  bus.coupling_capacitance = pair_cc.empty() ? 0.0 : pair_cc.front();
  bus.mutual_inductance = pair_lm.empty() ? 0.0 : pair_lm.front();
  bus.line_params = lines;
  bus.pair_capacitance = pair_cc;
  bus.pair_inductance = pair_lm;
  validate(bus);
  return bus;
}

CoupledBus make_full_bus(const std::vector<LineParams>& lines,
                         const numeric::RealMatrix& cc,
                         const numeric::RealMatrix& lm) {
  if (lines.size() < 2)
    throw std::invalid_argument("make_full_bus: need at least 2 lines");
  const std::size_t n = lines.size();
  // Shape check BEFORE the mirror extraction below reads any entry —
  // validate() re-checks, but it runs after this function has already
  // indexed the matrices.
  for (const numeric::RealMatrix* m : {&cc, &lm})
    if (m->rows() != 0 && (m->rows() != n || m->cols() != n))
      throw std::invalid_argument(
          "make_full_bus: coupling matrices must be lines x lines (or empty)");
  // Per-pair vectors mirror the first off-diagonals so adjacency-only
  // readers (and the heterogeneous validation path) stay consistent.
  std::vector<double> adj_cc(n - 1, 0.0), adj_lm(n - 1, 0.0);
  for (std::size_t j = 0; j + 1 < n; ++j) {
    if (cc.rows() > 0) adj_cc[j] = cc(j, j + 1);
    if (lm.rows() > 0) adj_lm[j] = lm(j, j + 1);
  }
  CoupledBus bus;
  bus.lines = static_cast<int>(n);
  bus.line = lines.front();
  bus.coupling_capacitance = adj_cc.front();
  bus.mutual_inductance = adj_lm.front();
  bus.line_params = lines;
  bus.pair_capacitance = std::move(adj_cc);
  bus.pair_inductance = std::move(adj_lm);
  bus.full_cc = cc;
  bus.full_lm = lm;
  validate(bus);
  return bus;
}

double max_lm_ratio(int lines) {
  if (lines < 2)
    throw std::invalid_argument("max_lm_ratio: lines must be >= 2");
  // The per-segment inductance matrix is tridiagonal Toeplitz, L*(I + k*T)
  // with T carrying 1 on the first off-diagonals. Its eigenvalues are
  // 1 + 2k cos(j*pi/(N+1)), so positive definiteness requires
  // k < 1/(2 cos(pi/(N+1))) — exactly 1 for N = 2, tightening toward 1/2 as
  // the bus widens.
  return 1.0 /
         (2.0 * std::cos(std::numbers::pi / static_cast<double>(lines + 1)));
}

bool mutual_chain_positive_definite(const std::vector<double>& self,
                                    const std::vector<double>& mutual) {
  if (self.empty() || mutual.size() + 1 != self.size())
    throw std::invalid_argument(
        "mutual_chain_positive_definite: need N self and N-1 mutual entries");
  // LDLt of the tridiagonal matrix: d_0 = L_0, d_i = L_i - M_{i-1}^2 / d_{i-1};
  // positive definite iff every pivot d_i > 0 (exact for tridiagonal).
  double d = self[0];
  if (!(d > 0.0)) return false;
  for (std::size_t i = 1; i < self.size(); ++i) {
    d = self[i] - mutual[i - 1] * mutual[i - 1] / d;
    if (!(d > 0.0)) return false;
  }
  return true;
}

namespace {

// Full-coupling checks: shape, symmetry, finiteness, zero diagonals, cc >= 0,
// mirror consistency with the adjacent-pair vectors, and positive
// definiteness of the full inductance matrix diag(Li) + Lm via the general
// dense LDLt (numeric::symmetric_positive_definite) — the beyond-
// nearest-neighbor generalization of the tridiagonal check.
void validate_full_coupling(const CoupledBus& bus) {
  const std::size_t n = static_cast<std::size_t>(bus.lines);
  if (!bus.heterogeneous())
    throw std::invalid_argument(
        "CoupledBus: full coupling matrices require the heterogeneous "
        "representation (use make_bus(lines, cc, lm))");
  const auto check_matrix = [&](const numeric::RealMatrix& m, const char* what,
                                bool nonnegative,
                                const std::vector<double>& mirror) {
    if (m.rows() == 0) return;  // absent: no coupling of this kind
    if (m.rows() != n || m.cols() != n)
      throw std::invalid_argument(std::string("CoupledBus: ") + what +
                                  " must be lines x lines");
    for (std::size_t i = 0; i < n; ++i) {
      if (m(i, i) != 0.0)
        throw std::invalid_argument(std::string("CoupledBus: ") + what +
                                    " must have a zero diagonal (self terms "
                                    "live in the per-line totals)");
      for (std::size_t j = 0; j < n; ++j) {
        if (!std::isfinite(m(i, j)))
          throw std::invalid_argument(std::string("CoupledBus: ") + what +
                                      " entries must be finite");
        if (m(i, j) != m(j, i))
          throw std::invalid_argument(std::string("CoupledBus: ") + what +
                                      " must be symmetric");
        if (nonnegative && m(i, j) < 0.0)
          throw std::invalid_argument(std::string("CoupledBus: ") + what +
                                      " entries must be >= 0");
      }
    }
    for (std::size_t j = 0; j + 1 < n; ++j)
      if (m(j, j + 1) != mirror[j])
        throw std::invalid_argument(std::string("CoupledBus: ") + what +
                                    " first off-diagonal must mirror the "
                                    "adjacent-pair vector");
  };
  // Lm entries are also required >= 0: Circuit::add_mutual only stamps
  // coupling coefficients in [0, 1), so a negative mutual could never reach
  // the simulator anyway.
  check_matrix(bus.full_cc, "full_cc", /*nonnegative=*/true, bus.pair_capacitance);
  check_matrix(bus.full_lm, "full_lm", /*nonnegative=*/true, bus.pair_inductance);

  numeric::RealMatrix inductance(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    inductance(i, i) = bus.line_params[i].total_inductance;
    for (std::size_t j = 0; j < n; ++j)
      if (i != j && bus.full_lm.rows() > 0) inductance(i, j) = bus.full_lm(i, j);
  }
  if (!numeric::symmetric_positive_definite(inductance))
    throw std::invalid_argument(
        "CoupledBus: the full inductance matrix (per-line L on the diagonal, "
        "full_lm off it) is not positive definite — the bus is "
        "unphysical/unstable. Reduce the mutual inductances.");
}

}  // namespace

void validate(const CoupledBus& bus) {
  if (bus.lines < 2)
    throw std::invalid_argument("CoupledBus: lines must be >= 2");

  if (bus.heterogeneous()) {
    if (bus.line_params.size() != static_cast<std::size_t>(bus.lines))
      throw std::invalid_argument(
          "CoupledBus: line_params must have one entry per line");
    if (bus.pair_capacitance.size() != static_cast<std::size_t>(bus.lines - 1) ||
        bus.pair_inductance.size() != static_cast<std::size_t>(bus.lines - 1))
      throw std::invalid_argument(
          "CoupledBus: pair_capacitance/pair_inductance must have lines-1 "
          "entries");
    for (const LineParams& line : bus.line_params) validate(line);
    std::vector<double> self;
    self.reserve(bus.line_params.size());
    for (const LineParams& line : bus.line_params)
      self.push_back(line.total_inductance);
    for (double cc : bus.pair_capacitance)
      if (!std::isfinite(cc) || cc < 0.0)
        throw std::invalid_argument(
            "CoupledBus: pair_capacitance entries must be finite and >= 0");
    for (double lm : bus.pair_inductance)
      if (!std::isfinite(lm) || lm < 0.0)
        throw std::invalid_argument(
            "CoupledBus: pair_inductance entries must be finite and >= 0");
    if (bus.full_coupling()) {
      // Full matrices supersede the tridiagonal test: the general dense LDLt
      // validates every pair's mutual at once.
      validate_full_coupling(bus);
    } else if (!mutual_chain_positive_definite(self, bus.pair_inductance)) {
      throw std::invalid_argument(
          "CoupledBus: the per-segment inductance matrix (per-line L on the "
          "diagonal, per-pair Lm off it) is not positive definite — the bus "
          "is unphysical/unstable. Reduce the mutual inductances.");
    }
    return;
  }

  if (bus.full_coupling())
    throw std::invalid_argument(
        "CoupledBus: full coupling matrices require the heterogeneous "
        "representation (use make_bus(lines, cc, lm))");

  validate(bus.line);
  if (!std::isfinite(bus.coupling_capacitance) || bus.coupling_capacitance < 0.0)
    throw std::invalid_argument(
        "CoupledBus: coupling_capacitance must be finite and >= 0");
  if (!std::isfinite(bus.mutual_inductance) || bus.mutual_inductance < 0.0)
    throw std::invalid_argument(
        "CoupledBus: mutual_inductance must be finite and >= 0");
  const double k_max = max_lm_ratio(bus.lines);
  if (bus.mutual_inductance >= k_max * bus.line.total_inductance)
    throw std::invalid_argument(
        "CoupledBus: mutual_inductance must satisfy Lm/Lt < 1/(2 cos(pi/(N+1)))"
        " = " +
        std::to_string(k_max) +
        " for " + std::to_string(bus.lines) +
        " lines — beyond it the nearest-neighbor inductance matrix loses "
        "positive definiteness and the bus is unphysical/unstable");
}

std::string describe(const CoupledBus& bus) {
  using rlcsim::units::eng;
  if (bus.heterogeneous()) {
    double cc_min = bus.pair_capacitance.front(), cc_max = cc_min;
    for (double cc : bus.pair_capacitance) {
      cc_min = std::min(cc_min, cc);
      cc_max = std::max(cc_max, cc);
    }
    return std::to_string(bus.lines) + " heterogeneous lines (line0 " +
           describe(bus.line_params.front()) + "); Cc per pair " +
           eng(cc_min, "F") + ".." + eng(cc_max, "F");
  }
  return std::to_string(bus.lines) + " lines, each " + describe(bus.line) +
         "; Cc=" + eng(bus.coupling_capacitance, "F") +
         " (Cc/Ct=" + eng(bus.cc_ratio(), "") +
         "), Lm=" + eng(bus.mutual_inductance, "H") +
         " (Lm/Lt=" + eng(bus.lm_ratio(), "") + ")";
}

}  // namespace rlcsim::tline
