#include "tline/coupled_bus.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

#include "numeric/units.h"

namespace rlcsim::tline {

double CoupledBus::cc_ratio() const {
  return coupling_capacitance / line.total_capacitance;
}

double CoupledBus::lm_ratio() const {
  return mutual_inductance / line.total_inductance;
}

CoupledBus make_bus(int lines, const LineParams& line, double cc_ratio,
                    double lm_ratio) {
  const CoupledBus bus{lines, line, cc_ratio * line.total_capacitance,
                       lm_ratio * line.total_inductance};
  validate(bus);
  return bus;
}

double max_lm_ratio(int lines) {
  if (lines < 2)
    throw std::invalid_argument("max_lm_ratio: lines must be >= 2");
  // The per-segment inductance matrix is tridiagonal Toeplitz, L*(I + k*T)
  // with T carrying 1 on the first off-diagonals. Its eigenvalues are
  // 1 + 2k cos(j*pi/(N+1)), so positive definiteness requires
  // k < 1/(2 cos(pi/(N+1))) — exactly 1 for N = 2, tightening toward 1/2 as
  // the bus widens.
  return 1.0 /
         (2.0 * std::cos(std::numbers::pi / static_cast<double>(lines + 1)));
}

void validate(const CoupledBus& bus) {
  validate(bus.line);
  if (bus.lines < 2)
    throw std::invalid_argument("CoupledBus: lines must be >= 2");
  if (!std::isfinite(bus.coupling_capacitance) || bus.coupling_capacitance < 0.0)
    throw std::invalid_argument(
        "CoupledBus: coupling_capacitance must be finite and >= 0");
  if (!std::isfinite(bus.mutual_inductance) || bus.mutual_inductance < 0.0)
    throw std::invalid_argument(
        "CoupledBus: mutual_inductance must be finite and >= 0");
  const double k_max = max_lm_ratio(bus.lines);
  if (bus.mutual_inductance >= k_max * bus.line.total_inductance)
    throw std::invalid_argument(
        "CoupledBus: mutual_inductance must satisfy Lm/Lt < 1/(2 cos(pi/(N+1)))"
        " = " +
        std::to_string(k_max) +
        " for " + std::to_string(bus.lines) +
        " lines — beyond it the nearest-neighbor inductance matrix loses "
        "positive definiteness and the bus is unphysical/unstable");
}

std::string describe(const CoupledBus& bus) {
  using rlcsim::units::eng;
  return std::to_string(bus.lines) + " lines, each " + describe(bus.line) +
         "; Cc=" + eng(bus.coupling_capacitance, "F") +
         " (Cc/Ct=" + eng(bus.cc_ratio(), "") +
         "), Lm=" + eng(bus.mutual_inductance, "H") +
         " (Lm/Lt=" + eng(bus.lm_ratio(), "") + ")";
}

}  // namespace rlcsim::tline
