#include "tline/coupled_bus.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

#include "numeric/units.h"

namespace rlcsim::tline {

const LineParams& CoupledBus::line_at(int i) const {
  if (i < 0 || i >= lines)
    throw std::invalid_argument("CoupledBus::line_at: index out of range");
  return heterogeneous() ? line_params[static_cast<std::size_t>(i)] : line;
}

double CoupledBus::pair_cc(int j) const {
  if (j < 0 || j + 1 >= lines)
    throw std::invalid_argument("CoupledBus::pair_cc: index out of range");
  return heterogeneous() ? pair_capacitance[static_cast<std::size_t>(j)]
                         : coupling_capacitance;
}

double CoupledBus::pair_lm(int j) const {
  if (j < 0 || j + 1 >= lines)
    throw std::invalid_argument("CoupledBus::pair_lm: index out of range");
  return heterogeneous() ? pair_inductance[static_cast<std::size_t>(j)]
                         : mutual_inductance;
}

double CoupledBus::cc_ratio() const {
  return coupling_capacitance / line.total_capacitance;
}

double CoupledBus::lm_ratio() const {
  return mutual_inductance / line.total_inductance;
}

CoupledBus make_bus(int lines, const LineParams& line, double cc_ratio,
                    double lm_ratio) {
  const CoupledBus bus{lines,
                       line,
                       cc_ratio * line.total_capacitance,
                       lm_ratio * line.total_inductance,
                       {},
                       {},
                       {}};
  validate(bus);
  return bus;
}

CoupledBus make_bus(const std::vector<LineParams>& lines,
                    const std::vector<double>& pair_cc,
                    const std::vector<double>& pair_lm) {
  if (lines.size() < 2)
    throw std::invalid_argument("make_bus: need at least 2 lines");
  CoupledBus bus;
  bus.lines = static_cast<int>(lines.size());
  bus.line = lines.front();  // scalar mirrors for uniform-only readers
  bus.coupling_capacitance = pair_cc.empty() ? 0.0 : pair_cc.front();
  bus.mutual_inductance = pair_lm.empty() ? 0.0 : pair_lm.front();
  bus.line_params = lines;
  bus.pair_capacitance = pair_cc;
  bus.pair_inductance = pair_lm;
  validate(bus);
  return bus;
}

double max_lm_ratio(int lines) {
  if (lines < 2)
    throw std::invalid_argument("max_lm_ratio: lines must be >= 2");
  // The per-segment inductance matrix is tridiagonal Toeplitz, L*(I + k*T)
  // with T carrying 1 on the first off-diagonals. Its eigenvalues are
  // 1 + 2k cos(j*pi/(N+1)), so positive definiteness requires
  // k < 1/(2 cos(pi/(N+1))) — exactly 1 for N = 2, tightening toward 1/2 as
  // the bus widens.
  return 1.0 /
         (2.0 * std::cos(std::numbers::pi / static_cast<double>(lines + 1)));
}

bool mutual_chain_positive_definite(const std::vector<double>& self,
                                    const std::vector<double>& mutual) {
  if (self.empty() || mutual.size() + 1 != self.size())
    throw std::invalid_argument(
        "mutual_chain_positive_definite: need N self and N-1 mutual entries");
  // LDLt of the tridiagonal matrix: d_0 = L_0, d_i = L_i - M_{i-1}^2 / d_{i-1};
  // positive definite iff every pivot d_i > 0 (exact for tridiagonal).
  double d = self[0];
  if (!(d > 0.0)) return false;
  for (std::size_t i = 1; i < self.size(); ++i) {
    d = self[i] - mutual[i - 1] * mutual[i - 1] / d;
    if (!(d > 0.0)) return false;
  }
  return true;
}

void validate(const CoupledBus& bus) {
  if (bus.lines < 2)
    throw std::invalid_argument("CoupledBus: lines must be >= 2");

  if (bus.heterogeneous()) {
    if (bus.line_params.size() != static_cast<std::size_t>(bus.lines))
      throw std::invalid_argument(
          "CoupledBus: line_params must have one entry per line");
    if (bus.pair_capacitance.size() != static_cast<std::size_t>(bus.lines - 1) ||
        bus.pair_inductance.size() != static_cast<std::size_t>(bus.lines - 1))
      throw std::invalid_argument(
          "CoupledBus: pair_capacitance/pair_inductance must have lines-1 "
          "entries");
    for (const LineParams& line : bus.line_params) validate(line);
    std::vector<double> self;
    self.reserve(bus.line_params.size());
    for (const LineParams& line : bus.line_params)
      self.push_back(line.total_inductance);
    for (double cc : bus.pair_capacitance)
      if (!std::isfinite(cc) || cc < 0.0)
        throw std::invalid_argument(
            "CoupledBus: pair_capacitance entries must be finite and >= 0");
    for (double lm : bus.pair_inductance)
      if (!std::isfinite(lm) || lm < 0.0)
        throw std::invalid_argument(
            "CoupledBus: pair_inductance entries must be finite and >= 0");
    if (!mutual_chain_positive_definite(self, bus.pair_inductance))
      throw std::invalid_argument(
          "CoupledBus: the per-segment inductance matrix (per-line L on the "
          "diagonal, per-pair Lm off it) is not positive definite — the bus "
          "is unphysical/unstable. Reduce the mutual inductances.");
    return;
  }

  validate(bus.line);
  if (!std::isfinite(bus.coupling_capacitance) || bus.coupling_capacitance < 0.0)
    throw std::invalid_argument(
        "CoupledBus: coupling_capacitance must be finite and >= 0");
  if (!std::isfinite(bus.mutual_inductance) || bus.mutual_inductance < 0.0)
    throw std::invalid_argument(
        "CoupledBus: mutual_inductance must be finite and >= 0");
  const double k_max = max_lm_ratio(bus.lines);
  if (bus.mutual_inductance >= k_max * bus.line.total_inductance)
    throw std::invalid_argument(
        "CoupledBus: mutual_inductance must satisfy Lm/Lt < 1/(2 cos(pi/(N+1)))"
        " = " +
        std::to_string(k_max) +
        " for " + std::to_string(bus.lines) +
        " lines — beyond it the nearest-neighbor inductance matrix loses "
        "positive definiteness and the bus is unphysical/unstable");
}

std::string describe(const CoupledBus& bus) {
  using rlcsim::units::eng;
  if (bus.heterogeneous()) {
    double cc_min = bus.pair_capacitance.front(), cc_max = cc_min;
    for (double cc : bus.pair_capacitance) {
      cc_min = std::min(cc_min, cc);
      cc_max = std::max(cc_max, cc);
    }
    return std::to_string(bus.lines) + " heterogeneous lines (line0 " +
           describe(bus.line_params.front()) + "); Cc per pair " +
           eng(cc_min, "F") + ".." + eng(cc_max, "F");
  }
  return std::to_string(bus.lines) + " lines, each " + describe(bus.line) +
         "; Cc=" + eng(bus.coupling_capacitance, "F") +
         " (Cc/Ct=" + eng(bus.cc_ratio(), "") +
         "), Lm=" + eng(bus.mutual_inductance, "H") +
         " (Lm/Lt=" + eng(bus.lm_ratio(), "") + ")";
}

}  // namespace rlcsim::tline
