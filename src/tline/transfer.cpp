#include "tline/transfer.h"

#include <stdexcept>

namespace rlcsim::tline {

double GateLineLoad::rt_ratio() const {
  if (line.total_resistance <= 0.0)
    throw std::invalid_argument("rt_ratio: line resistance must be > 0");
  return driver_resistance / line.total_resistance;
}

double GateLineLoad::ct_ratio() const {
  if (line.total_capacitance <= 0.0)
    throw std::invalid_argument("ct_ratio: line capacitance must be > 0");
  return load_capacitance / line.total_capacitance;
}

void validate(const GateLineLoad& system) {
  if (!(system.driver_resistance >= 0.0))
    throw std::invalid_argument("GateLineLoad: driver_resistance must be >= 0");
  if (!(system.load_capacitance >= 0.0))
    throw std::invalid_argument("GateLineLoad: load_capacitance must be >= 0");
  tline::validate(system.line);
}

Complex transfer_exact(const GateLineLoad& system, Complex s) {
  const Abcd line = distributed_line(system.line, s);
  return terminated_transfer(line, Complex(system.driver_resistance, 0.0),
                             s * system.load_capacitance);
}

Complex transfer_lumped(const GateLineLoad& system, int segments, Complex s) {
  if (segments < 1)
    throw std::invalid_argument("transfer_lumped: segments must be >= 1");
  const Abcd ladder = lumped_ladder(system.line, segments, s);
  return terminated_transfer(ladder, Complex(system.driver_resistance, 0.0),
                             s * system.load_capacitance);
}

DenominatorMoments moments(const GateLineLoad& system) {
  const double rtr = system.driver_resistance;
  const double cl = system.load_capacitance;
  const double rt = system.line.total_resistance;
  const double lt = system.line.total_inductance;
  const double ct = system.line.total_capacitance;

  DenominatorMoments m;
  m.b1 = rtr * (ct + cl) + rt * (ct / 2.0 + cl);
  m.b2 = lt * (ct / 2.0 + cl) + rt * rt * ct * (ct / 24.0 + cl / 6.0) +
         rtr * rt * ct * (ct / 6.0 + cl / 2.0);
  return m;
}

}  // namespace rlcsim::tline
