// Finite-rise-time (saturated-ramp) inputs.
//
// The paper assumes "a fast rising signal that can be approximated by a step"
// — this module quantifies when that holds. For an input ramping linearly
// from 0 to 1 over tr, the exact output is
//
//   Vout(s) = H(s) (1 - e^{-s tr}) / (s^2 tr)
//
// and the propagation delay is conventionally measured from the INPUT's 50%
// point (t = tr/2) to the output's first 50% crossing. As tr -> 0 this
// reduces to the step delay; the tests verify that limit and the monotone
// growth with tr.
#pragma once

#include "numeric/laplace.h"
#include "tline/transfer.h"

namespace rlcsim::tline {

// Far-end voltage at time t for the saturated-ramp input (rise time tr > 0).
double ramp_response_at(const GateLineLoad& system, double rise_time, double t,
                        const numeric::EulerOptions& opt = {});

// 50%-input to 50%-output propagation delay under a ramp input. Throws
// std::invalid_argument for rise_time <= 0 (use threshold_delay for steps).
double ramp_threshold_delay(const GateLineLoad& system, double rise_time,
                            double threshold = 0.5,
                            const numeric::EulerOptions& opt = {});

// The step-approximation error the paper's assumption incurs:
// (ramp delay - step delay) / step delay, as a fraction. Small (< ~5%) while
// tr stays below roughly the system time constant; grows after.
double step_approximation_error(const GateLineLoad& system, double rise_time);

}  // namespace rlcsim::tline
