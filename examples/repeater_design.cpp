// Repeater design for a long data bus: size and place repeaters with the RC
// (Bakoglu) and RLC (Ismail-Friedman) methodologies, verify both against
// full chain simulation, and report the delay/area/power cost of ignoring
// inductance — the paper's Section III workflow end-to-end.
#include <cmath>
#include <cstdio>

#include "core/repeater.h"
#include "core/repeater_numeric.h"
#include "numeric/units.h"
#include "sim/builders.h"
#include "tech/nodes.h"

using namespace rlcsim;
using namespace rlcsim::units::literals;

namespace {

void report(const char* name, const tline::LineParams& line,
            const core::MinBuffer& buf, const core::RepeaterDesign& design,
            double vdd) {
  const core::RepeaterDesign practical =
      core::rounded_sections(line, buf, design);
  const double model_delay = core::total_delay(line, buf, practical);
  const sim::RepeaterChainSpec spec{line, static_cast<int>(practical.sections),
                                    practical.size, buf.r0, buf.c0, 24, vdd};
  const double sim_delay = sim::simulate_repeater_chain_delay(spec);
  const double area = core::repeater_area(buf, practical);
  const double power = core::dynamic_power(line, buf, practical, 1e9, vdd);
  std::printf("%-28s h=%6.1f k=%3.0f | model %8s | sim %8s | area %6.0f um^2 | %6.2f mW\n",
              name, practical.size, practical.sections,
              units::eng(model_delay, "s", 3).c_str(),
              units::eng(sim_delay, "s", 3).c_str(), area * 1e12, power * 1e3);
}

}  // namespace

int main() {
  // A 30 mm cross-chip bus on wide upper metal at the 250nm node — long
  // enough that the two methodologies pick different section counts.
  const tech::DeviceParams node = tech::node_250nm();
  const tline::PerUnitLength pul = tech::extract(tech::wide_clock_wire(node));
  const tline::LineParams line = tline::make_line(pul, 30.0_mm);
  const core::MinBuffer buf = tech::as_min_buffer(node);

  std::printf("bus: 30 mm, %s\n", tline::describe(line).c_str());
  std::printf("min buffer: R0=%s, C0=%s  ->  T_L/R = %.2f\n",
              units::eng(buf.r0, "ohm").c_str(), units::eng(buf.c0, "F").c_str(),
              core::t_lr(line, buf));

  const core::RepeaterDesign rc = core::bakoglu_rc(line, buf);
  const core::RepeaterDesign rlc = core::ismail_friedman_rlc(line, buf);
  const core::OptimizedDesign best = core::optimize(line, buf);

  std::printf("\n%-28s %-14s | %-14s | %-12s | %-14s | power@1GHz\n", "methodology",
              "sizing", "model delay", "sim delay", "repeater area");
  std::printf("----------------------------------------------------------------"
              "------------------------------------------\n");
  report("Bakoglu RC (eq. 11)", line, buf, rc, node.vdd);
  report("Ismail-Friedman (eqs. 14/15)", line, buf, rlc, node.vdd);
  report("numerical optimum", line, buf, best.continuous, node.vdd);

  const double area_rc = core::repeater_area(
      buf, core::rounded_sections(line, buf, rc));
  const double area_rlc = core::repeater_area(
      buf, core::rounded_sections(line, buf, rlc));
  std::printf(
      "\nCost of the RC-only methodology on this bus: %.0f%% more repeater area\n"
      "(eq. 18 predicts %.0f%% at this T) and %.1f%% more repeater+wire power,\n"
      "for no delay benefit.\n",
      100.0 * (area_rc / area_rlc - 1.0),
      core::area_increase_percent(core::t_lr(line, buf)),
      100.0 * (core::dynamic_power(line, buf, rc, 1e9, node.vdd) /
                   core::dynamic_power(line, buf, rlc, 1e9, node.vdd) -
               1.0));
  return 0;
}
