// Clock-spine analysis: a wide, thick top-metal wire — the classic
// inductance-dominated net the paper's introduction motivates.
//
// Shows: parasitic extraction from geometry, the DAC-98 figures of merit
// (the length window where inductance matters), ringing/overshoot analysis
// with the two-pole model, and a simulator cross-check.
#include <cstdio>

#include "core/delay_model.h"
#include "core/two_pole.h"
#include "numeric/units.h"
#include "sim/builders.h"
#include "tech/fom.h"
#include "tech/nodes.h"
#include "tline/step_response.h"

using namespace rlcsim;
using namespace rlcsim::units::literals;

int main() {
  const tech::DeviceParams node = tech::node_250nm();
  const tech::WirePreset preset = tech::wide_clock_wire(node);
  const tline::PerUnitLength pul = tech::extract(preset);

  std::printf("250nm wide clock wire (w=%.1f um, t=%.1f um, h=%.1f um):\n",
              preset.geometry.width * 1e6, preset.geometry.thickness * 1e6,
              preset.geometry.height * 1e6);
  std::printf("  R = %7.2f ohm/mm   L = %6.3f nH/mm   C = %6.1f fF/mm\n",
              pul.resistance * 1e-3, pul.inductance * 1e6, pul.capacitance * 1e12);
  std::printf("  z0 = %.1f ohm, velocity = %.2f mm/ps... (%.1f ps/mm)\n",
              pul.lossless_z0(), 1e-9 * pul.velocity(),
              1e12 / (pul.velocity() * 1e3));

  // Where does inductance matter for a 100 ps clock edge?
  const double rise = 100.0_ps;
  const tech::InductanceWindow window = tech::inductance_window(pul, rise);
  std::printf("\ninductance window for a %s edge: %s < length < %s\n",
              units::eng(rise, "s").c_str(),
              units::eng(window.min_length, "m").c_str(),
              units::eng(window.max_length, "m").c_str());

  // Analyze a 12 mm spine driven by a large clock buffer (h = 80).
  const double length = 12.0_mm;
  const tech::ScaledBuffer driver = tech::scale_buffer(node, 80.0);
  const tline::LineParams line = tline::make_line(pul, length);
  const tline::GateLineLoad system{driver.output_resistance, line,
                                   20.0 * node.c0};  // fanout-of-20 load
  std::printf("\n12 mm spine, h=80 driver (%s), inductance %s here\n",
              units::eng(driver.output_resistance, "ohm").c_str(),
              tech::inductance_matters(pul, length, rise) ? "MATTERS" : "is negligible");

  const core::DelayModel model(system);
  std::printf("  %s\n", model.describe().c_str());

  const core::TwoPoleModel two_pole(system);
  std::printf("  two-pole view: damping %.2f, overshoot %.1f%%",
              two_pole.damping(), 100.0 * two_pole.overshoot());
  if (two_pole.peak_time())
    std::printf(", first peak at %s", units::eng(*two_pole.peak_time(), "s").c_str());
  std::printf("\n");

  // Simulator cross-check, including the waveform's actual overshoot.
  const sim::Circuit circuit = sim::build_gate_line_load(system, 100);
  sim::TransientOptions options;
  options.t_stop = 12.0 * model.delay();
  const sim::TransientResult result = sim::run_transient(circuit, options);
  const sim::Trace out = result.waveforms.trace("out");
  std::printf("\nsimulation (100-segment ladder): delay %s, overshoot %.1f%%\n",
              units::eng(out.delay(1.0), "s").c_str(), 100.0 * out.overshoot(1.0));
  std::printf("closed form eq. (9):             delay %s  (%.1f%% off)\n",
              units::eng(model.delay(), "s").c_str(),
              100.0 * (model.delay() / out.delay(1.0) - 1.0));

  if (out.overshoot(1.0) > 0.10)
    std::printf(
        "\nNote: >10%% overshoot — a real design would also check ringing against\n"
        "noise budgets; the two-pole overshoot estimate above gives that number\n"
        "without running the simulator.\n");
  return 0;
}
