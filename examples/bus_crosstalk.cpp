// Crosstalk on a wide coupled bus — the multi-net extension of the paper's
// single-line delay story. Shows (1) how the victim's 50% delay spreads
// between the same-phase and opposite-phase switching corners as coupling
// grows, (2) the peak noise a quiet victim picks up, (3) shield insertion:
// grounding lines around the victim trades a fixed delay cost for immunity,
// (4) the reduced-order (mor/) analytic model reproducing the transient
// metrics orders of magnitude faster, and (5) a crosstalk design-space
// sweep riding the parallel engine.
#include <cmath>
#include <cstdio>

#include "core/crosstalk.h"
#include "numeric/units.h"
#include "sweep/sweep.h"
#include "tline/coupled_bus.h"

using namespace rlcsim;
using namespace rlcsim::units::literals;

int main() {
  // A 5-bit slice of a wide on-chip bus: each line 200 ohm, 5 nH, 1 pF.
  const tline::LineParams line{200.0_ohm, 5.0_nH, 1.0_pF};
  core::CrosstalkOptions opt;
  opt.driver_resistance = 100.0_ohm;
  opt.load_capacitance = 50.0_fF;
  opt.segments = 20;

  const tline::CoupledBus nominal = tline::make_bus(5, line, 0.4, 0.25);
  std::printf("bus: %s\n", tline::describe(nominal).c_str());
  std::printf("drivers %s, loads %s, victim = middle line\n\n",
              units::eng(opt.driver_resistance, "ohm").c_str(),
              units::eng(opt.load_capacitance, "F").c_str());

  const double isolated =
      core::analyze_crosstalk(tline::make_bus(5, line, 0.0, 0.0),
                              core::SwitchingPattern::kSamePhase, opt)
          .victim_delay_50.value();
  std::printf("isolated-line 50%% delay (decoupled bus): %s\n\n",
              units::eng(isolated, "s").c_str());

  std::printf("victim delay vs coupling (Lm/Lt = 0.25):\n");
  std::printf("%-8s %-12s %-12s %-12s %s\n", "Cc/Ct", "same-phase",
              "opposite", "spread", "quiet-victim noise");
  std::printf("-----------------------------------------------------------------\n");
  for (double cc : {0.1, 0.2, 0.4, 0.6}) {
    const tline::CoupledBus bus = tline::make_bus(5, line, cc, 0.25);
    const auto same =
        core::analyze_crosstalk(bus, core::SwitchingPattern::kSamePhase, opt);
    const auto opposite = core::analyze_crosstalk(
        bus, core::SwitchingPattern::kOppositePhase, opt);
    const auto quiet = core::analyze_crosstalk(
        bus, core::SwitchingPattern::kQuietVictim, opt);
    const double ts = same.victim_delay_50.value();
    const double to = opposite.victim_delay_50.value();
    std::printf("%-8.2f %-12s %-12s %-12s %6.1f mV\n", cc,
                units::eng(ts, "s", 3).c_str(), units::eng(to, "s", 3).c_str(),
                units::eng(to - ts, "s", 3).c_str(), quiet.peak_noise * 1e3);
  }

  std::printf(
      "\nThe opposite-phase corner Miller-amplifies Cc while same-phase\n"
      "bootstraps it away: the SAME wires span a wide delay range depending\n"
      "on what their neighbors do — which is why bus timing needs coupled\n"
      "RLC analysis, not per-line models alone.\n\n");

  // Bus width: noise saturates quickly once both neighbors exist.
  std::printf("quiet-victim noise vs bus width (Cc/Ct = 0.4, Lm/Lt = 0.25):\n");
  for (int n : {2, 3, 5, 7}) {
    const tline::CoupledBus bus = tline::make_bus(n, line, 0.4, 0.25);
    const auto quiet = core::analyze_crosstalk(
        bus, core::SwitchingPattern::kQuietVictim, opt);
    std::printf("  %d lines : %6.1f mV\n", n, quiet.peak_noise * 1e3);
  }

  // Shield insertion: shield_every = s grounds (both ends, through the
  // driver resistance) every line at a multiple-of-s distance from the
  // victim. s = 1 grounds the victim's neighbors: with nearest-neighbor
  // coupling that removes every aggressor path, collapsing the delay spread
  // and the noise to zero — at the cost of the shields' fixed ground load.
  std::printf("\nshield insertion (7-line bus, Cc/Ct = 0.4, Lm/Lt = 0.25):\n");
  std::printf("%-14s %-12s %-12s %-12s %s\n", "shield_every", "same-phase",
              "opposite", "spread", "quiet noise");
  std::printf("-----------------------------------------------------------------\n");
  const tline::CoupledBus wide = tline::make_bus(7, line, 0.4, 0.25);
  for (int s : {0, 2, 1}) {
    core::CrosstalkOptions shielded = opt;
    shielded.shield_every = s;
    const auto same =
        core::analyze_crosstalk(wide, core::SwitchingPattern::kSamePhase, shielded);
    const auto opp = core::analyze_crosstalk(
        wide, core::SwitchingPattern::kOppositePhase, shielded);
    const auto quiet = core::analyze_crosstalk(
        wide, core::SwitchingPattern::kQuietVictim, shielded);
    const double ts = same.victim_delay_50.value();
    const double to = opp.victim_delay_50.value();
    std::printf("%-14d %-12s %-12s %-12s %6.1f mV\n", s,
                units::eng(ts, "s", 3).c_str(), units::eng(to, "s", 3).c_str(),
                units::eng(to - ts, "s", 3).c_str(), quiet.peak_noise * 1e3);
  }

  // The reduced-order engine (src/mor/): the same victim metrics from a
  // q-pole analytic model — moments, Pade, closed-form response — with no
  // time stepping. This is the paper's analytic-vs-dynamic argument
  // replayed at arbitrary order.
  std::printf("\nreduced-order (mor/) vs transient, opposite-phase victim delay:\n");
  const auto full_opp = core::analyze_crosstalk(
      nominal, core::SwitchingPattern::kOppositePhase, opt);
  std::printf("  transient : %s\n",
              units::eng(full_opp.victim_delay_50.value(), "s", 4).c_str());
  for (int q : {2, 4, 6}) {
    const auto red = core::analyze_crosstalk_reduced(
        nominal, core::SwitchingPattern::kOppositePhase, opt, q);
    std::printf("  q = %d     : %s  (%+.2f%%)\n", q,
                units::eng(red.victim_delay_50.value(), "s", 4).c_str(),
                100.0 * (red.victim_delay_50.value() -
                         full_opp.victim_delay_50.value()) /
                    full_opp.victim_delay_50.value());
  }

  // The same study as a declarative parallel sweep.
  sweep::SweepSpec spec;
  spec.base.system = {opt.driver_resistance, line, opt.load_capacitance};
  spec.base.xtalk.bus_lines = 3;
  // Strictly positive coupling keeps one sparsity pattern across the grid,
  // so the whole sweep replays point 0's two symbolic factorizations.
  spec.axes = {
      sweep::linspace(sweep::Variable::kCouplingCapRatio, 0.1, 0.6, 4),
      sweep::linspace(sweep::Variable::kMutualRatio, 0.05, 0.3, 3),
      sweep::switching_patterns({core::SwitchingPattern::kSamePhase,
                                 core::SwitchingPattern::kOppositePhase}),
  };
  sweep::EngineOptions eng_opt;
  eng_opt.segments = opt.segments;
  const sweep::SweepEngine engine(eng_opt);
  const auto result = engine.run(spec, sweep::Analysis::kCrosstalkPushout);
  double worst = 0.0;
  std::size_t worst_i = 0;
  for (std::size_t i = 0; i < result.values.size(); ++i) {
    if (std::isfinite(result.values[i]) && result.values[i] > worst) {
      worst = result.values[i];
      worst_i = i;
    }
  }
  const auto worst_point = spec.at(worst_i);
  std::printf(
      "\nsweep: %zu-point (Cc/Ct x Lm/Lt x pattern) push-out grid on %zu "
      "threads,\n%.0f points/sec, %zu symbolic factorizations total\n",
      result.values.size(), result.threads_used, result.points_per_second,
      result.symbolic_factorizations);
  std::printf("worst push-out vs two-pole isolated delay: %s at Cc/Ct=%.2f, "
              "Lm/Lt=%.2f (%s)\n",
              units::eng(worst, "s", 3).c_str(), worst_point.xtalk.cc_ratio,
              worst_point.xtalk.lm_ratio,
              core::switching_pattern_name(worst_point.xtalk.pattern));
  return 0;
}
