// Quickstart: compute the propagation delay of one global wire three ways
// (RC formulas, the paper's RLC closed form, exact simulation) and see why
// the RC answer is wrong for a low-resistance wire.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/delay_model.h"
#include "numeric/units.h"
#include "sim/builders.h"
#include "tline/rc_line.h"
#include "tline/step_response.h"

using namespace rlcsim;
using namespace rlcsim::units::literals;

int main() {
  // A 10 mm upper-metal wire, quoted per-mm as designers do. Wide and thick:
  // only 8 ohm/mm, so the wave nature of the line dominates its diffusion.
  const double length = 10.0_mm;
  const tline::PerUnitLength wire{
      8.0 / 1.0_mm,        // 8 ohm/mm  -> low-resistance global wire
      1.0_nH / 1.0_mm,     // 1 nH/mm
      0.2_pF / 1.0_mm,     // 0.2 pF/mm
  };
  const tline::LineParams line = tline::make_line(wire, length);

  // Driven by a strong gate (20 ohm output resistance) into a 1 pF load
  // (a heavily fanned-out receiver bank).
  const tline::GateLineLoad system{20.0_ohm, line, 1.0_pF};

  std::printf("wire:   %s\n", tline::describe(line).c_str());

  const core::DelayModel model(system);
  std::printf("model:  %s\n", model.describe().c_str());

  const double elmore = tline::elmore_delay(
      system.driver_resistance, line.total_resistance, line.total_capacitance,
      system.load_capacitance);
  const double sakurai = tline::sakurai_delay(
      system.driver_resistance, line.total_resistance, line.total_capacitance,
      system.load_capacitance);
  const double rlc = model.delay();
  const double exact = tline::threshold_delay(system);
  const double simulated = sim::simulate_gate_line_delay(system, 200);

  std::printf("\n%-34s %12s %10s\n", "method", "delay", "vs exact");
  std::printf("%-34s %12s %+9.1f%%\n", "Elmore (RC first moment)",
              units::eng(elmore, "s").c_str(), 100.0 * (elmore / exact - 1.0));
  std::printf("%-34s %12s %+9.1f%%\n", "Sakurai RC fit",
              units::eng(sakurai, "s").c_str(), 100.0 * (sakurai / exact - 1.0));
  std::printf("%-34s %12s %+9.1f%%\n", "Ismail-Friedman eq. (9), RLC",
              units::eng(rlc, "s").c_str(), 100.0 * (rlc / exact - 1.0));
  std::printf("%-34s %12s %+9.1f%%\n", "exact transmission line",
              units::eng(exact, "s").c_str(), 0.0);
  std::printf("%-34s %12s %+9.1f%%\n", "MNA transient simulation",
              units::eng(simulated, "s").c_str(),
              100.0 * (simulated / exact - 1.0));

  std::printf(
      "\nTakeaway: on a low-resistance wire the RC formulas fail in both\n"
      "directions — Elmore overestimates, the Sakurai fit undershoots because\n"
      "neither knows the signal travels as a wave (time of flight %s).\n"
      "The single-parameter RLC closed form stays within a few percent.\n",
      units::eng(line.time_of_flight(), "s").c_str());
  return 0;
}
