// Crosstalk between two parallel wide wires — the "why model inductance"
// companion to the delay story. Sweeps capacitive and inductive coupling on
// a victim/aggressor pair and shows the classic far-end cancellation between
// the two mechanisms, plus the AC view of the coupled pair.
#include <cstdio>

#include "numeric/units.h"
#include "sim/ac.h"
#include "sim/builders.h"
#include "sim/transient.h"

using namespace rlcsim;
using namespace rlcsim::units::literals;

int main() {
  // Two 8 mm wide-metal wires: each 100 ohm, 5 nH, 1 pF total.
  sim::CoupledLinesSpec spec;
  spec.line = {100.0_ohm, 5.0_nH, 1.0_pF};
  spec.segments = 24;
  const double rdrv = 100.0_ohm;
  const double cload = 50.0_fF;

  std::printf("victim/aggressor pair: each %s\n",
              tline::describe(spec.line).c_str());
  std::printf("drivers %s, loads %s\n\n", units::eng(rdrv, "ohm").c_str(),
              units::eng(cload, "F").c_str());

  std::printf("%-12s %-10s | %s\n", "Cc (total)", "k (ind.)", "victim far-end peak");
  std::printf("--------------------------------------------------\n");
  struct Case {
    double cc, k;
  };
  const Case cases[] = {{0.0, 0.0},      {0.2e-12, 0.0}, {0.4e-12, 0.0},
                        {0.0, 0.2},      {0.0, 0.4},     {0.2e-12, 0.2},
                        {0.4e-12, 0.4}};
  for (const Case& c : cases) {
    spec.coupling_capacitance = c.cc;
    spec.inductive_k = c.k;
    const double peak = sim::simulate_crosstalk_peak(spec, rdrv, cload);
    std::printf("%-12s %-10.2f | %6.1f mV%s\n", units::eng(c.cc, "F", 3).c_str(),
                c.k, peak * 1e3,
                (c.cc > 0.0 && c.k > 0.0) ? "   (mechanisms partially cancel)" : "");
  }

  // AC view: transfer from the aggressor's source to the victim's far end.
  spec.coupling_capacitance = 0.3e-12;
  spec.inductive_k = 0.3;
  const sim::Circuit circuit = sim::build_crosstalk_pair(spec, rdrv, cload);
  std::printf("\ncoupling transfer |V(vic.out)/V(aggressor)| vs frequency:\n");
  for (double f : sim::log_frequencies(1e7, 2e10, 7)) {
    const auto h = sim::ac_transfer_at(circuit, "vagg", "vic.out", f);
    std::printf("  %10s : %7.2f dB\n", units::eng(f, "Hz", 3).c_str(),
                20.0 * std::log10(std::abs(h)));
  }
  std::printf(
      "\nCrosstalk is a high-pass phenomenon: negligible at low frequency,\n"
      "peaking near the lines' resonance — another reason wide fast nets\n"
      "need RLC (not RC) modeling.\n");
  return 0;
}
