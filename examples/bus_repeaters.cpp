// Repeater insertion on a coupled bus (src/repbus/) — the paper's (h, k)
// sizing story replayed under crosstalk. Shows (1) the isolated eq. 14/15
// optimum vs what the bus actually does to it, (2) uniform vs staggered vs
// interleaved placement under every switching pattern (full cascaded-MNA
// chains), (3) the stage-composed reduced model reproducing those numbers
// with zero time stepping, and (4) the crosstalk-aware optimizer's
// delay/area/noise frontier.
#include <cstdio>

#include "numeric/units.h"
#include "repbus/bus_chain.h"
#include "repbus/optimize.h"
#include "repbus/stage_compose.h"
#include "sweep/sweep.h"

using namespace rlcsim;
using namespace rlcsim::units::literals;

int main() {
  // The Table-1-derived cell: 500 ohm / 10 nH / 1 pF line, R0 C0 = 15 ps
  // repeaters, five coupled copies.
  const tline::LineParams line{500.0_ohm, 10.0_nH, 1.0_pF};
  const core::MinBuffer buffer{3000.0, 5.0_fF, 1.0, 0.0};
  const tline::CoupledBus bus = tline::make_bus(5, line, 0.4, 0.25);
  std::printf("bus: %s\n", tline::describe(bus).c_str());

  const core::RepeaterDesign isolated = core::ismail_friedman_rlc(line, buffer);
  std::printf("isolated eq. 14/15 optimum: h = %.1f, k = %.2f -> eq. 19 delay %s\n\n",
              isolated.size, isolated.sections,
              units::eng(core::total_delay(line, buffer, isolated), "s").c_str());

  repbus::RepeaterBusSpec spec;
  spec.bus = bus;
  spec.sections = 4;
  spec.size = 32.0;
  spec.buffer = buffer;
  spec.segments_per_section = 12;

  std::printf("%-12s | %12s %12s %12s | %10s\n", "placement", "same-phase",
              "opp-phase", "composed opp", "quiet noise");
  for (auto placement : {repbus::Placement::kUniform, repbus::Placement::kStaggered,
                         repbus::Placement::kInterleaved}) {
    spec.placement = placement;
    const repbus::StageModels models = repbus::build_stage_models(spec, 4);
    const auto same =
        repbus::simulate_bus_chain(spec, core::SwitchingPattern::kSamePhase);
    const auto opposite =
        repbus::simulate_bus_chain(spec, core::SwitchingPattern::kOppositePhase);
    const auto quiet =
        repbus::simulate_bus_chain(spec, core::SwitchingPattern::kQuietVictim);
    const auto composed = repbus::compose_bus_chain(
        spec, core::SwitchingPattern::kOppositePhase, models);
    std::printf("%-12s | %12s %12s %12s | %9.0f mV\n",
                repbus::placement_name(placement),
                units::eng(*same.victim_delay_50, "s").c_str(),
                units::eng(*opposite.victim_delay_50, "s").c_str(),
                units::eng(*composed.victim_delay_50, "s").c_str(),
                1e3 * quiet.peak_noise);
  }
  std::printf(
      "\n(uniform worst case pays the full Miller penalty every stage;\n"
      " staggered smears aggressor edges — quietest, slightly faster worst\n"
      " case at the same area; interleaved alternates the stage phases and\n"
      " collapses the same/opposite spread.)\n\n");

  // Crosstalk-aware optimization: worst-case delay under a noise cap.
  repbus::OptimizerOptions optimize;
  optimize.noise_cap = 0.15;  // volts on a quiet victim
  const sweep::SweepEngine engine;
  const repbus::BusOptimizationResult result =
      repbus::optimize_bus_repeaters(bus, buffer, optimize, engine);
  std::printf("optimizer: %zu candidates on %zu threads, %zu on the frontier\n",
              result.evaluations.size(), result.threads_used,
              result.frontier.size());
  if (result.best)
    std::printf("best under %.0f mV cap: h = %.1f, k = %d, %s -> worst %s, "
                "noise %.0f mV, area %.0f\n",
                1e3 * optimize.noise_cap, result.best->size,
                result.best->sections,
                repbus::placement_name(result.best->placement),
                units::eng(result.best->worst_delay, "s").c_str(),
                1e3 * result.best->noise, result.best->area);
  std::printf("\ndelay/area/noise frontier (vs isolated eq. 19 delay %s):\n",
              units::eng(result.isolated_delay, "s").c_str());
  for (const auto& point : result.frontier)
    std::printf("  h = %5.1f  k = %d  %-11s  worst %10s  noise %3.0f mV  "
                "area %5.0f\n",
                point.size, point.sections, repbus::placement_name(point.placement),
                units::eng(point.worst_delay, "s").c_str(), 1e3 * point.noise,
                point.area);
  return 0;
}
