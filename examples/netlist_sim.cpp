// The circuit-simulation substrate as a standalone tool: parse a SPICE-like
// netlist (from a file argument, or a built-in demo), run the transient
// analysis from its .tran card, and print measurements for every node.
//
// Usage:   ./netlist_sim [netlist-file]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "numeric/units.h"
#include "sim/netlist_parser.h"
#include "sim/transient.h"

using namespace rlcsim;

namespace {

// A two-stage repeater driving an RLC ladder — exercises every element kind.
const char* kDemoNetlist = R"(demo: buffered RLC line
* step source behind a driver resistance
V1 vin 0 STEP(0 1 0)
R1 vin n1 200

* 4-segment pi ladder, total 200 ohm / 4 nH / 2 pF
C10 n1 0 0.25p
R11 n1 m1 50
L11 m1 n2 1n
C11 n2 0 0.5p
R12 n2 m2 50
L12 m2 n3 1n
C12 n3 0 0.5p
R13 n3 m3 50
L13 m3 n4 1n
C13 n4 0 0.5p
R14 n4 m4 50
L14 m4 n5 1n
C14 n5 0 0.25p

* behavioral repeater, then a lumped RC tail
B1 n5 n6 ROUT=150 CIN=5f
R2 n6 out 100
C2 out 0 0.8p

.tran 2p 12n
.end
)";

std::string load(const char* path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error(std::string("cannot open ") + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string text = (argc > 1) ? load(argv[1]) : kDemoNetlist;
    const sim::ParsedNetlist parsed = sim::parse_netlist(text);
    if (!parsed.title.empty()) std::printf("netlist: %s\n", parsed.title.c_str());

    sim::TransientOptions options =
        parsed.tran.value_or(sim::TransientOptions{.t_stop = 10e-9, .dt = 0.0});
    if (!parsed.tran)
      std::printf("(no .tran card; defaulting to 10 ns)\n");

    const sim::TransientResult result = sim::run_transient(parsed.circuit, options);
    std::printf("simulated %zu steps, %zu LU factorizations, %zu nodes\n\n",
                result.steps_taken, result.lu_factorizations,
                parsed.circuit.node_count());

    std::printf("%-10s %12s %12s %12s %14s\n", "node", "final [V]", "max [V]",
                "t50 (rise)", "10-90 rise");
    for (const std::string& node : result.waveforms.node_names()) {
      const sim::Trace trace = result.waveforms.trace(node);
      const auto t50 = trace.crossing(0.5 * trace.final_value(), 0.0, +1);
      std::printf("%-10s %12.4f %12.4f %12s %14s\n", node.c_str(),
                  trace.final_value(), trace.max_value(),
                  t50 ? units::eng(*t50, "s", 3).c_str() : "-",
                  trace.rise_time(trace.final_value()) > 0.0
                      ? units::eng(trace.rise_time(trace.final_value()), "s", 3).c_str()
                      : "-");
    }

    if (!result.buffer_fire_times.empty()) {
      std::printf("\nbuffer fire times:\n");
      for (std::size_t i = 0; i < result.buffer_fire_times.size(); ++i) {
        const double t = result.buffer_fire_times[i];
        std::printf("  %s: %s\n", parsed.circuit.buffers()[i].name.c_str(),
                    std::isfinite(t) ? units::eng(t, "s", 4).c_str() : "never fired");
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
