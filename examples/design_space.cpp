// Design-space exploration with the parallel sweep engine: the paper's
// repeater-insertion design curves regenerated from ONE declarative sweep
// spec instead of hand-written loops.
//
// Three sweeps over the 250nm-class wide clock wire:
//   1. the (h, k) total-delay surface (eq. 19 objective) around the
//      closed-form optimum — the design curves a sizing tool walks;
//   2. delay vs line length for the three sizing methodologies (Bakoglu RC,
//      closed-form RLC eqs. 14/15, numerical optimum via the engine's
//      parallel batch evaluator);
//   3. a transient sweep over driver strength x load — the dynamic-
//      simulation grid the closed-form model replaces, with the engine's
//      points/sec as the punchline.
#include <cmath>
#include <cstdio>

#include "core/repeater.h"
#include "core/repeater_numeric.h"
#include "sweep/sweep.h"
#include "tech/nodes.h"
#include "tline/rlc.h"

using namespace rlcsim;

int main() {
  const tech::DeviceParams node = tech::node_250nm();
  const core::MinBuffer buffer = tech::as_min_buffer(node);
  const auto pul = tech::extract(tech::wide_clock_wire(node));

  sweep::SweepEngine engine;  // RLCSIM_THREADS / hardware concurrency

  std::printf("design_space: %s wide clock wire, %zu sweep threads\n",
              node.node_name.c_str(), engine.threads());

  // ---- 1. (h, k) delay surface at 15 mm ----------------------------------
  const tline::LineParams line = tline::make_line(pul, 15e-3);
  const core::RepeaterDesign closed = core::ismail_friedman_rlc(line, buffer);
  const core::RepeaterDesign rc = core::bakoglu_rc(line, buffer);
  std::printf("\n[1] total delay (ps) vs (h, k), 15 mm line; T_L/R = %.2f\n",
              core::t_lr(line, buffer));
  std::printf("    closed-form optimum: h = %.1f, k = %.1f; Bakoglu: h = %.1f, k = %.1f\n",
              closed.size, closed.sections, rc.size, rc.sections);

  sweep::SweepSpec surface;
  surface.base.system.line = line;
  surface.base.buffer = buffer;
  surface.axes = {
      sweep::linspace(sweep::Variable::kRepeaterSize, 0.4 * closed.size,
                      1.8 * closed.size, 5),
      sweep::linspace(sweep::Variable::kRepeaterSections,
                      std::max(1.0, 0.4 * closed.sections), 2.0 * closed.sections,
                      9),
  };
  const auto grid = engine.run(surface, sweep::Analysis::kRepeaterDelay);
  std::printf("    %8s |", "h \\ k");
  for (double k : surface.axes[1].values) std::printf(" %7.1f", k);
  std::printf("\n");
  for (std::size_t i = 0; i < surface.axes[0].values.size(); ++i) {
    std::printf("    %8.1f |", surface.axes[0].values[i]);
    for (std::size_t j = 0; j < surface.axes[1].values.size(); ++j)
      std::printf(" %7.1f", grid.values[surface.flat_index({i, j})] * 1e12);
    std::printf("\n");
  }

  // ---- 2. sizing methodologies vs length ---------------------------------
  std::printf("\n[2] repeater-system delay (ps) vs length: RC sizing / closed-form RLC\n"
              "    (eqs. 14+15) / numerical optimum (engine batch)\n");
  std::printf("    %6s | %9s %9s %9s | %7s %7s\n", "mm", "bakoglu", "eq14/15",
              "numeric", "k_rc", "k_rlc");
  for (double mm : {5.0, 10.0, 15.0, 20.0, 30.0}) {
    const tline::LineParams l = tline::make_line(pul, mm * 1e-3);
    const core::RepeaterDesign b = core::bakoglu_rc(l, buffer);
    const core::RepeaterDesign cf = core::ismail_friedman_rlc(l, buffer);
    const double t_b = core::total_delay(l, buffer, b);
    const double t_cf = core::total_delay(l, buffer, cf);
    const auto opt = engine.optimize_repeater(l, buffer);
    std::printf("    %6.0f | %9.1f %9.1f %9.1f | %7.1f %7.1f\n", mm, t_b * 1e12,
                t_cf * 1e12, opt.continuous_delay * 1e12, b.sections, cf.sections);
  }

  // ---- 3. the dynamic-simulation grid, parallelized ----------------------
  sweep::SweepSpec dynamic;
  dynamic.base.system = {node.r0, line, 10.0 * buffer.c0};
  dynamic.axes = {
      sweep::logspace(sweep::Variable::kDriverResistance, 0.1 * node.r0, node.r0, 6),
      sweep::linspace(sweep::Variable::kLoadCapacitance, 2.0 * buffer.c0,
                      40.0 * buffer.c0, 6),
  };
  const auto sim_grid = engine.run(dynamic, sweep::Analysis::kTransientDelay);
  const auto model_grid = engine.run(dynamic, sweep::Analysis::kClosedFormDelay);
  double worst = 0.0;
  for (std::size_t i = 0; i < sim_grid.values.size(); ++i) {
    const double err =
        100.0 * (model_grid.values[i] - sim_grid.values[i]) / sim_grid.values[i];
    worst = std::max(worst, std::fabs(err));
  }
  std::printf("\n[3] %zu-point MNA transient grid: %.1f points/sec on %zu threads\n"
              "    (%zu symbolic factorizations for the whole grid);\n"
              "    eq. (9) vs simulation worst |error| over the grid: %.2f%%\n",
              sim_grid.values.size(), sim_grid.points_per_second,
              sim_grid.threads_used, sim_grid.symbolic_factorizations, worst);
  return 0;
}
