// perfkit_report — span-attribution digest over an RLCSIM_TRACE file.
//
// Answers "where did the time go" from the command line, without loading
// Perfetto: parses the Chrome-trace JSON the obs layer writes (complete
// "X" events, one tid per pool shard), rebuilds the per-thread span nesting
// from intervals, and prints a per-span-name table of
//   calls      how many spans carried this name
//   total      wall time inside spans of this name (children included)
//   self       total minus time inside DIRECT child spans (the attribution
//              answer: self sums to the covered wall, nothing double-counts)
// plus the fraction of the traced wall covered by any span at all — an
// honesty figure: a trace whose spans cover 60% of the wall is attributing
// a minority of the run, and the table should be read accordingly.
//
// With --metrics BENCH_*.json (the bench's own JSON, which embeds the
// metrics snapshot) it also derives the rates the obs counters were built
// for: factorizations/sec, steal ratio, cache hit rates.
//
// Modes / exit status:
//   perfkit_report TRACE.json [--metrics BENCH.json] [--top N]
//                  [--min-coverage PCT] [--expect GOLDEN.txt]
// 0 on success, 1 when --min-coverage is not met (or golden mismatch),
// 2 on usage/parse errors. Same single-file ground rules as tools/lint.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "perfkit_json.h"

namespace {

using perfkit::JsonValue;

struct Span {
  std::string name;
  double start_us = 0.0;
  double end_us = 0.0;
  long tid = 0;
};

struct NameStats {
  std::size_t calls = 0;
  double total_us = 0.0;
  double self_us = 0.0;
};

// Sum of the union of [start, end) intervals — the "covered wall" figure.
double union_us(std::vector<std::pair<double, double>> intervals) {
  std::sort(intervals.begin(), intervals.end());
  double covered = 0.0, cursor = -1.0;
  for (const auto& [start, end] : intervals) {
    const double from = std::max(start, cursor);
    if (end > from) covered += end - from;
    cursor = std::max(cursor, end);
  }
  return covered;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, metrics_path, expect_path;
  std::size_t top_n = 20;
  double min_coverage_pct = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--top" && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--min-coverage" && i + 1 < argc) {
      min_coverage_pct = std::strtod(argv[++i], nullptr);
    } else if (arg == "--expect" && i + 1 < argc) {
      expect_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "perfkit_report: unknown option " << arg << "\n";
      return 2;
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      std::cerr << "perfkit_report: unexpected argument " << arg << "\n";
      return 2;
    }
  }
  if (trace_path.empty()) {
    std::cerr << "usage: perfkit_report TRACE.json [--metrics BENCH.json] "
                 "[--top N] [--min-coverage PCT] [--expect GOLDEN.txt]\n";
    return 2;
  }

  JsonValue trace;
  try {
    trace = perfkit::parse_json_file(trace_path);
  } catch (const std::runtime_error& error) {
    std::cerr << "perfkit_report: " << error.what() << "\n";
    return 2;
  }
  const JsonValue* events = trace.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    std::cerr << "perfkit_report: " << trace_path
              << " has no traceEvents array (not a Chrome trace?)\n";
    return 2;
  }

  std::vector<Span> spans;
  for (const JsonValue& event : events->array) {
    const JsonValue* ph = event.find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString ||
        ph->string != "X")
      continue;  // the obs layer only writes complete events; skip others
    const JsonValue* name = event.find("name");
    const auto ts = perfkit::as_number(event.find("ts"));
    const auto dur = perfkit::as_number(event.find("dur"));
    const auto tid = perfkit::as_number(event.find("tid"));
    if (name == nullptr || name->kind != JsonValue::Kind::kString || !ts ||
        !dur)
      continue;
    spans.push_back({name->string, *ts, *ts + *dur,
                     static_cast<long>(tid.value_or(0.0))});
  }
  if (spans.empty()) {
    std::cerr << "perfkit_report: " << trace_path
              << " contains no complete (ph=X) span events\n";
    return 2;
  }

  // Traced wall: first span start to last span end, across all threads.
  double wall_start = spans.front().start_us, wall_end = spans.front().end_us;
  std::vector<std::pair<double, double>> all_intervals;
  for (const Span& span : spans) {
    wall_start = std::min(wall_start, span.start_us);
    wall_end = std::max(wall_end, span.end_us);
    all_intervals.emplace_back(span.start_us, span.end_us);
  }
  const double wall_us = std::max(wall_end - wall_start, 1e-9);
  const double covered_us = union_us(std::move(all_intervals));
  const double coverage_pct = 100.0 * covered_us / wall_us;

  // Per-thread nesting reconstruction: sort (start asc, dur desc) so a
  // parent precedes its children, then a simple interval stack attributes
  // each span's direct-child time. Map key = name, aggregated across tids.
  std::map<long, std::vector<Span>> by_tid;
  for (const Span& span : spans) by_tid[span.tid].push_back(span);
  std::map<std::string, NameStats> stats;
  for (auto& [tid, thread_spans] : by_tid) {
    (void)tid;
    std::sort(thread_spans.begin(), thread_spans.end(),
              [](const Span& a, const Span& b) {
                if (a.start_us != b.start_us) return a.start_us < b.start_us;
                return (a.end_us - a.start_us) > (b.end_us - b.start_us);
              });
    struct Open { const Span* span; double child_us; };
    std::vector<Open> stack;
    auto close = [&stats, &stack]() {
      const Open top = stack.back();
      stack.pop_back();
      const double dur = top.span->end_us - top.span->start_us;
      NameStats& entry = stats[top.span->name];
      entry.calls += 1;
      entry.total_us += dur;
      entry.self_us += std::max(dur - top.child_us, 0.0);
      if (!stack.empty()) stack.back().child_us += dur;
    };
    for (const Span& span : thread_spans) {
      while (!stack.empty() && span.start_us >= stack.back().span->end_us)
        close();
      stack.push_back({&span, 0.0});
    }
    while (!stack.empty()) close();
  }

  std::vector<std::pair<std::string, NameStats>> rows(stats.begin(),
                                                      stats.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.self_us != b.second.self_us)
      return a.second.self_us > b.second.self_us;
    return a.first < b.first;
  });

  std::vector<std::string> report;
  char line[256];
  std::snprintf(line, sizeof line,
                "perfkit_report: %zu spans on %zu threads, wall %.3f ms, "
                "coverage %.1f%% of wall",
                spans.size(), by_tid.size(), wall_us / 1e3, coverage_pct);
  report.push_back(line);
  std::snprintf(line, sizeof line, "  %-24s %8s %12s %8s %12s %8s", "span",
                "calls", "total ms", "total%", "self ms", "self%");
  report.push_back(line);
  for (std::size_t i = 0; i < rows.size() && i < top_n; ++i) {
    const auto& [name, entry] = rows[i];
    std::snprintf(line, sizeof line,
                  "  %-24s %8zu %12.3f %7.1f%% %12.3f %7.1f%%", name.c_str(),
                  entry.calls, entry.total_us / 1e3,
                  100.0 * entry.total_us / wall_us, entry.self_us / 1e3,
                  100.0 * entry.self_us / wall_us);
    report.push_back(line);
  }
  if (rows.size() > top_n) {
    std::snprintf(line, sizeof line, "  ... %zu more span names (--top %zu)",
                  rows.size() - top_n, top_n);
    report.push_back(line);
  }

  // ------------------------------------------------------- derived rates
  // The counters a rate needs live in the bench JSON's metrics block; the
  // covered wall (not the full wall) is the honest denominator because the
  // counters only tick inside instrumented code.
  if (!metrics_path.empty()) {
    JsonValue bench_doc;
    try {
      bench_doc = perfkit::parse_json_file(metrics_path);
    } catch (const std::runtime_error& error) {
      std::cerr << "perfkit_report: " << error.what() << "\n";
      return 2;
    }
    const JsonValue* counters =
        perfkit::resolve_pointer(bench_doc, "/metrics/counters");
    if (counters == nullptr)
      counters = bench_doc.find("counters");  // bare snapshot also accepted
    if (counters == nullptr) {
      std::cerr << "perfkit_report: " << metrics_path
                << " has neither /metrics/counters nor /counters\n";
      return 2;
    }
    auto counter = [counters](const char* name) {
      return perfkit::as_number(counters->find(name)).value_or(0.0);
    };
    report.push_back("derived rates (counters over covered wall):");
    const double covered_s = covered_us / 1e6;
    std::snprintf(line, sizeof line,
                  "  lu.numeric/s: %.0f   lu.solves/s: %.0f",
                  counter("lu.numeric") / covered_s,
                  counter("lu.solves") / covered_s);
    report.push_back(line);
    const double tasks = counter("pool.tasks_executed");
    std::snprintf(line, sizeof line,
                  "  steal ratio: %.3f (pool.steals %0.f / "
                  "pool.tasks_executed %.0f)",
                  tasks > 0.0 ? counter("pool.steals") / tasks : 0.0,
                  counter("pool.steals"), tasks);
    report.push_back(line);
    const double lu_dt = counter("cache.lu_dt.hits") + counter("cache.lu_dt.misses");
    const double reuse = counter("reuse.solver_hits") + counter("reuse.solver_misses");
    std::snprintf(line, sizeof line,
                  "  cache.lu_dt hit rate: %.3f   reuse.solver hit rate: %.3f",
                  lu_dt > 0.0 ? counter("cache.lu_dt.hits") / lu_dt : 0.0,
                  reuse > 0.0 ? counter("reuse.solver_hits") / reuse : 0.0);
    report.push_back(line);
  }

  bool coverage_ok = true;
  if (min_coverage_pct > 0.0 && coverage_pct < min_coverage_pct) {
    coverage_ok = false;
    std::snprintf(line, sizeof line,
                  "perfkit_report: coverage %.1f%% below required %.1f%% — "
                  "spans are missing from the hot path",
                  coverage_pct, min_coverage_pct);
    report.push_back(line);
  }

  if (!expect_path.empty()) {
    std::vector<std::string> expected;
    std::ifstream golden(expect_path);
    if (!golden) {
      std::cerr << "perfkit_report: cannot read golden file " << expect_path
                << "\n";
      return 2;
    }
    for (std::string text; std::getline(golden, text);) {
      if (!text.empty() && text.back() == '\r') text.pop_back();
      if (text.empty() || text[0] == '#') continue;
      expected.push_back(text);
    }
    // Golden verdict only (coverage gating has its own plain-mode test).
    if (report == expected) {
      std::printf("perfkit_report: golden self-test passed (%zu lines)\n",
                  report.size());
      return 0;
    }
    std::cerr << "perfkit_report: golden mismatch\n--- expected\n";
    for (const auto& text : expected) std::cerr << text << "\n";
    std::cerr << "--- actual\n";
    for (const auto& text : report) std::cerr << text << "\n";
    return 1;
  }

  for (const std::string& text : report) std::printf("%s\n", text.c_str());
  return coverage_ok ? 0 : 1;
}
