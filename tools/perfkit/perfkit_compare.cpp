// perfkit_compare — noise-aware bench-regression comparator.
//
// Compares a current BENCH_*.json against a committed baseline
// (bench/baselines/<bench>.json) metric by metric and classifies each as
//   match        value identical to the baseline
//   noise        inside the metric's tolerance window
//   improvement  outside the window in the GOOD direction (re-bless soon)
//   regression   outside the window in the BAD direction
// and exits nonzero when any GATED metric regresses. This is the consumer
// side of the observability stack: PR 9 made every bench emit counters,
// spans, and a metrics block; this tool is what turns those numbers into a
// tracked trajectory with teeth (cf. google/benchmark's compare.py and
// LNT-style perf tracking).
//
// Noise model: window = max(tolerance * |baseline|, abs_tolerance). The
// committed baselines gate only MACHINE-INDEPENDENT metrics — exact
// deterministic counts (symbolic factorizations, cache hits, obs counters),
// bit-identity booleans, and accuracy percentages with a small absolute
// floor for cross-libm variance. Wall-clock rates are either tracked
// ungated (gate: false) or gated with a catastrophic-only 75% window,
// because the blessing host and the CI runner do not share a core count or
// ISA (the manifest records both sides).
//
// Modes:
//   perfkit_compare [--trajectory F] [--expect GOLDEN] BASELINE CURRENT
//   perfkit_compare --bless --out BASELINE CURRENT
//
// Exit status: 0 clean (match/noise/improvement only), 1 gated regression
// (or golden mismatch under --expect), 2 usage/parse/schema/missing-metric
// errors. Same single-file plain-C++ ground rules as tools/lint.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "perfkit_json.h"

namespace {

using perfkit::JsonValue;

inline constexpr int kBaselineFormatVersion = 1;

enum class Direction { kHigher, kLower, kExact };

const char* direction_name(Direction d) {
  switch (d) {
    case Direction::kHigher: return "higher";
    case Direction::kLower: return "lower";
    case Direction::kExact: return "exact";
  }
  return "exact";
}

struct MetricSpec {
  const char* name;       // stable report/trajectory identifier
  const char* pointer;    // perfkit_json.h pointer-with-selectors
  Direction direction;    // which way "better" points (exact: neither)
  double tolerance;       // relative window half-width vs |baseline|
  double abs_tolerance;   // absolute window floor (libm / rounding slack)
  bool gate;              // false = tracked in report+trajectory, never fails
};

struct BenchCatalog {
  const char* bench;
  std::vector<MetricSpec> metrics;
};

// The blessing catalog: which members of each bench's JSON are headline
// metrics, and how tightly each is held. `--bless` resolves these pointers
// against a real run to mint bench/baselines/<bench>.json; compare mode
// reads the SPECS BACK FROM THE BASELINE FILE, so a committed baseline is
// self-describing and survives catalog edits until re-blessed.
const std::vector<BenchCatalog>& catalog() {
  static const std::vector<BenchCatalog> kCatalog = {
      {"sweep_scaling",
       {
           {"bit_identical_all_threads", "/all_thread_counts_bit_identical",
            Direction::kExact, 0.0, 0.0, true},
           {"symbolic_factorizations@t1",
            "/runs/threads=1/symbolic_factorizations", Direction::kExact, 0.0,
            0.0, true},
           {"solver_reuse_hits@t1", "/runs/threads=1/solver_reuse_hits",
            Direction::kExact, 0.0, 0.0, true},
           {"lu.symbolic", "/metrics/counters/lu.symbolic", Direction::kExact,
            0.0, 0.0, true},
           {"cache.lu_dt.hits", "/metrics/counters/cache.lu_dt.hits",
            Direction::kExact, 0.0, 0.0, true},
           // Catastrophic backstop only: rate, machine-dependent.
           {"points_per_second@t1", "/runs/threads=1/points_per_second",
            Direction::kHigher, 0.75, 0.0, true},
           {"points_per_second@t8", "/runs/threads=8/points_per_second",
            Direction::kHigher, 0.75, 0.0, false},
       }},
      {"crosstalk_scaling",
       {
           {"bit_identical_all_threads", "/all_thread_counts_bit_identical",
            Direction::kExact, 0.0, 0.0, true},
           {"symbolic_factorizations@t1",
            "/runs/threads=1/symbolic_factorizations", Direction::kExact, 0.0,
            0.0, true},
           {"solver_reuse_hits@t1", "/runs/threads=1/solver_reuse_hits",
            Direction::kExact, 0.0, 0.0, true},
           {"sweep.runs", "/metrics/counters/sweep.runs", Direction::kExact,
            0.0, 0.0, true},
           {"points_per_second@t1", "/runs/threads=1/points_per_second",
            Direction::kHigher, 0.75, 0.0, true},
       }},
      {"mor_accuracy",
       {
           // Accuracy percentages: deterministic modulo cross-libm ULPs,
           // held to 25% relative with a 0.05pp absolute floor.
           {"q4_worst_pct", "/gates/gate=q4_worst_pct/value",
            Direction::kLower, 0.25, 0.05, true},
           {"q4_mean_pct", "/gates/gate=q4_mean_pct/value", Direction::kLower,
            0.25, 0.05, true},
           {"q8_worst_pct", "/gates/gate=q8_worst_pct/value",
            Direction::kLower, 0.25, 0.05, true},
           {"bus_delay_q4up_worst_pct",
            "/gates/gate=bus_delay_q4up_worst_pct/value", Direction::kLower,
            0.25, 0.05, true},
           {"bus_noise_q4up_worst_pct",
            "/gates/gate=bus_noise_q4up_worst_pct/value", Direction::kLower,
            0.25, 0.05, true},
           {"reduced_sweep_symbolic_factorizations",
            "/reduced_sweep/symbolic_factorizations", Direction::kExact, 0.0,
            0.0, true},
           {"reduced_sweep_bit_identical",
            "/reduced_sweep/bit_identical_1_vs_3_threads", Direction::kExact,
            0.0, 0.0, true},
           {"single_line_wall_time_speedup", "/single_line/wall_time_speedup",
            Direction::kHigher, 0.75, 0.0, false},
       }},
      {"repbus_frontier",
       {
           {"composed_vs_mna_worst_delay_pct",
            "/gates/gate=composed_vs_mna_worst_delay_pct/value",
            Direction::kLower, 0.25, 0.05, true},
           // Deterministic delay/noise ratios of two simulated placements:
           // exact up to printed precision + cross-libm slack.
           {"staggered_over_uniform_opposite_delay",
            "/gates/gate=staggered_over_uniform_opposite_delay/value",
            Direction::kExact, 0.0, 0.002, true},
           {"staggered_over_uniform_quiet_noise",
            "/gates/gate=staggered_over_uniform_quiet_noise/value",
            Direction::kExact, 0.0, 0.002, true},
           {"optimizer_bit_identical",
            "/optimizer_determinism/bit_identical_1_vs_3_threads",
            Direction::kExact, 0.0, 0.0, true},
           {"inner_loop_speedup", "/inner_loop/speedup", Direction::kHigher,
            0.75, 0.0, true},
       }},
      {"graph_scaling",
       {
           {"h_tree_max_arrival_err_pct",
            "/gates/gate=h_tree_max_arrival_err_pct/value", Direction::kLower,
            0.25, 0.05, true},
           {"h_tree_max_slew_err_pct",
            "/gates/gate=h_tree_max_slew_err_pct/value", Direction::kLower,
            0.25, 0.05, true},
           {"h_tree_skew_err_pct", "/gates/gate=h_tree_skew_err_pct/value",
            Direction::kLower, 0.25, 0.05, true},
           {"chain_equivalence_failures",
            "/gates/gate=chain_equivalence_failures/value", Direction::kExact,
            0.0, 0.0, true},
           {"thread_determinism_failures",
            "/gates/gate=thread_determinism_failures/value", Direction::kExact,
            0.0, 0.0, true},
           {"graph.nodes_evaluated", "/metrics/counters/graph.nodes_evaluated",
            Direction::kExact, 0.0, 0.0, true},
       }},
      {"sweep_batch",
       {
           {"bit_identical", "/gates/bit_identical", Direction::kExact, 0.0,
            0.0, true},
           // Deterministic point accounting (batched vs scalar fallback).
           {"transient_min_batched_fraction",
            "/gates/transient_min_batched_fraction", Direction::kExact, 0.0,
            0.001, true},
           {"lu.ejected_lanes", "/metrics/counters/lu.ejected_lanes",
            Direction::kExact, 0.0, 0.0, true},
           // Vectorization-dependent: the blessing host's portable build and
           // CI's -march=native build sit far apart; track, don't gate.
           {"transient_speedup_w8_vs_w1",
            "/gates/transient_speedup_w8_vs_w1", Direction::kHigher, 0.75, 0.0,
            false},
       }},
      // Synthetic bench for the comparator's own golden tests
      // (tools/perfkit/testdata): one metric per classification knob.
      {"demo",
       {
           {"points_per_second", "/results/points_per_second",
            Direction::kHigher, 0.05, 0.0, true},
           {"symbolic_factorizations", "/results/symbolic_factorizations",
            Direction::kExact, 0.0, 0.0, true},
           {"cache_hit_rate", "/results/cache_hit_rate", Direction::kHigher,
            0.02, 0.01, true},
           {"span_p99_seconds", "/results/span_p99_seconds", Direction::kLower,
            0.10, 0.0, true},
           {"tracked_rate", "/results/tracked_rate", Direction::kHigher, 0.5,
            0.0, false},
       }},
  };
  return kCatalog;
}

std::string manifest_string(const JsonValue& doc, const char* key) {
  const JsonValue* manifest = doc.find("manifest");
  if (manifest == nullptr) return "unknown";
  const JsonValue* value = manifest->find(key);
  if (value == nullptr || value->kind != JsonValue::Kind::kString)
    return "unknown";
  return value->string;
}

// ------------------------------------------------------------------- bless

int bless(const std::string& out_path, const std::string& current_path) {
  JsonValue current;
  try {
    current = perfkit::parse_json_file(current_path);
  } catch (const std::runtime_error& error) {
    std::cerr << "perfkit_compare: " << error.what() << "\n";
    return 2;
  }
  const std::string bench = manifest_string(current, "bench");
  const JsonValue* manifest = current.find("manifest");
  const auto schema = perfkit::as_number(
      manifest ? manifest->find("schema_version") : nullptr);
  if (bench == "unknown" || !schema) {
    std::cerr << "perfkit_compare: " << current_path
              << " has no /manifest/{bench,schema_version}; cannot bless a "
                 "run with no provenance\n";
    return 2;
  }
  const BenchCatalog* specs = nullptr;
  for (const BenchCatalog& entry : catalog())
    if (bench == entry.bench) specs = &entry;
  if (specs == nullptr) {
    std::cerr << "perfkit_compare: no metric catalog for bench '" << bench
              << "' (add one in tools/perfkit/perfkit_compare.cpp)\n";
    return 2;
  }

  // Resolve everything BEFORE touching the output path: a bless that dies
  // on a missing metric must not leave a truncated baseline behind.
  std::vector<double> values;
  for (const MetricSpec& spec : specs->metrics) {
    const auto value =
        perfkit::as_number(perfkit::resolve_pointer(current, spec.pointer));
    if (!value) {
      std::cerr << "perfkit_compare: cannot bless '" << bench << "': metric "
                << spec.name << " (" << spec.pointer
                << ") is missing or non-numeric in " << current_path << "\n";
      return 2;
    }
    values.push_back(*value);
  }

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::cerr << "perfkit_compare: cannot write " << out_path << "\n";
    return 2;
  }
  out << "{\n";
  out << "  \"perfkit_baseline\": " << kBaselineFormatVersion << ",\n";
  out << "  \"bench\": \"" << bench << "\",\n";
  out << "  \"schema_version\": " << perfkit::format_number(*schema) << ",\n";
  out << "  \"blessed_git_sha\": \"" << manifest_string(current, "git_sha")
      << "\",\n";
  out << "  \"metrics\": [\n";
  for (std::size_t i = 0; i < specs->metrics.size(); ++i) {
    const MetricSpec& spec = specs->metrics[i];
    out << "    {\"name\": \"" << spec.name << "\", \"pointer\": \""
        << spec.pointer << "\", \"direction\": \""
        << direction_name(spec.direction)
        << "\", \"tolerance\": " << perfkit::format_number(spec.tolerance)
        << ", \"abs_tolerance\": "
        << perfkit::format_number(spec.abs_tolerance)
        << ", \"gate\": " << (spec.gate ? "true" : "false")
        << ", \"baseline\": " << perfkit::format_number(values[i]) << "}"
        << (i + 1 < specs->metrics.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("perfkit_compare: blessed %zu metrics of '%s' into %s\n",
              specs->metrics.size(), bench.c_str(), out_path.c_str());
  return 0;
}

// ----------------------------------------------------------------- compare

struct Comparison {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  bool gate = true;
  std::string status;  // match | noise | improvement | regression
  std::string detail;  // window / delta rendering for the report line
};

std::string classify(const MetricSpec& spec, double baseline, double current,
                     std::string* detail) {
  const double delta = current - baseline;
  const double window =
      std::max(spec.tolerance * std::fabs(baseline), spec.abs_tolerance);
  char buffer[128];
  if (baseline != 0.0) {
    std::snprintf(buffer, sizeof buffer, "delta=%+.2f%% window=%.2f%%",
                  100.0 * delta / std::fabs(baseline),
                  100.0 * window / std::fabs(baseline));
  } else {
    std::snprintf(buffer, sizeof buffer, "delta=%s window=%s",
                  perfkit::format_number(delta).c_str(),
                  perfkit::format_number(window).c_str());
  }
  *detail = buffer;
  if (delta == 0.0) return "match";
  if (std::fabs(delta) <= window) return "noise";
  // Exact metrics have no good direction: any out-of-window drift is a
  // regression (a deterministic count that CHANGED is news either way).
  if (spec.direction == Direction::kExact) return "regression";
  const bool good = spec.direction == Direction::kHigher ? delta > 0.0
                                                         : delta < 0.0;
  return good ? "improvement" : "regression";
}

int compare(const std::string& baseline_path, const std::string& current_path,
            const std::string& trajectory_path,
            const std::string& expect_path) {
  JsonValue baseline_doc, current;
  try {
    baseline_doc = perfkit::parse_json_file(baseline_path);
    current = perfkit::parse_json_file(current_path);
  } catch (const std::runtime_error& error) {
    std::cerr << "perfkit_compare: " << error.what() << "\n";
    return 2;
  }

  const auto format = perfkit::as_number(baseline_doc.find("perfkit_baseline"));
  if (!format || *format != kBaselineFormatVersion) {
    std::cerr << "perfkit_compare: " << baseline_path
              << " is not a perfkit_baseline v" << kBaselineFormatVersion
              << " file\n";
    return 2;
  }
  const JsonValue* bench_value = baseline_doc.find("bench");
  const std::string bench =
      bench_value && bench_value->kind == JsonValue::Kind::kString
          ? bench_value->string
          : "unknown";

  // Schema handshake: a bench whose JSON shape changed must be re-blessed,
  // not silently compared across shapes.
  const auto baseline_schema =
      perfkit::as_number(baseline_doc.find("schema_version"));
  const JsonValue* manifest = current.find("manifest");
  const auto current_schema = perfkit::as_number(
      manifest ? manifest->find("schema_version") : nullptr);
  if (!baseline_schema || !current_schema) {
    std::cerr << "perfkit_compare: missing schema_version (baseline "
              << (baseline_schema ? "ok" : "missing") << ", current manifest "
              << (current_schema ? "ok" : "missing") << ")\n";
    return 2;
  }
  if (*baseline_schema != *current_schema) {
    std::cerr << "perfkit_compare: schema mismatch for '" << bench
              << "': baseline v" << perfkit::format_number(*baseline_schema)
              << " vs current v" << perfkit::format_number(*current_schema)
              << " — re-bless bench/baselines/" << bench << ".json\n";
    return 2;
  }

  const JsonValue* metrics = baseline_doc.find("metrics");
  if (metrics == nullptr || metrics->kind != JsonValue::Kind::kArray ||
      metrics->array.empty()) {
    std::cerr << "perfkit_compare: " << baseline_path
              << " declares no metrics\n";
    return 2;
  }

  std::vector<Comparison> rows;
  for (const JsonValue& entry : metrics->array) {
    MetricSpec spec{};
    const JsonValue* name = entry.find("name");
    const JsonValue* pointer = entry.find("pointer");
    const JsonValue* direction = entry.find("direction");
    const auto tolerance = perfkit::as_number(entry.find("tolerance"));
    const auto abs_tolerance = perfkit::as_number(entry.find("abs_tolerance"));
    const auto gate = perfkit::as_number(entry.find("gate"));
    const auto base_value = perfkit::as_number(entry.find("baseline"));
    if (name == nullptr || name->kind != JsonValue::Kind::kString ||
        pointer == nullptr || pointer->kind != JsonValue::Kind::kString ||
        direction == nullptr ||
        direction->kind != JsonValue::Kind::kString || !tolerance ||
        !abs_tolerance || !gate || !base_value) {
      std::cerr << "perfkit_compare: malformed metric entry in "
                << baseline_path << "\n";
      return 2;
    }
    if (direction->string == "higher") spec.direction = Direction::kHigher;
    else if (direction->string == "lower") spec.direction = Direction::kLower;
    else if (direction->string == "exact") spec.direction = Direction::kExact;
    else {
      std::cerr << "perfkit_compare: metric " << name->string
                << " has unknown direction '" << direction->string << "'\n";
      return 2;
    }
    spec.tolerance = *tolerance;
    spec.abs_tolerance = *abs_tolerance;

    const auto current_value =
        perfkit::as_number(perfkit::resolve_pointer(current, pointer->string));
    if (!current_value) {
      std::cerr << "perfkit_compare: metric " << name->string << " ("
                << pointer->string << ") is missing or non-numeric in the "
                << "current run of '" << bench << "' — bench output shape "
                << "changed without a schema_version bump?\n";
      return 2;
    }

    Comparison row;
    row.name = name->string;
    row.baseline = *base_value;
    row.current = *current_value;
    row.gate = *gate != 0.0;
    row.status = classify(spec, row.baseline, row.current, &row.detail);
    rows.push_back(std::move(row));
  }

  // ------------------------------------------------------------- reporting
  // No absolute paths in the report: goldens under tools/perfkit/testdata
  // compare this byte-for-byte across checkouts.
  const JsonValue* blessed_sha = baseline_doc.find("blessed_git_sha");
  std::vector<std::string> report;
  report.push_back(
      "perfkit_compare: bench '" + bench + "' current " +
      manifest_string(current, "git_sha") + " vs baseline blessed at " +
      (blessed_sha && blessed_sha->kind == JsonValue::Kind::kString
           ? blessed_sha->string
           : "unknown"));
  std::size_t gated = 0, regressions = 0, improvements = 0;
  for (const Comparison& row : rows) {
    if (row.gate) ++gated;
    if (row.status == "regression" && row.gate) ++regressions;
    if (row.status == "improvement") ++improvements;
    char line[256];
    std::snprintf(line, sizeof line,
                  "  [%-11s] %-7s %-38s baseline=%s current=%s %s",
                  row.status.c_str(), row.gate ? "gated" : "tracked",
                  row.name.c_str(), perfkit::format_number(row.baseline).c_str(),
                  perfkit::format_number(row.current).c_str(),
                  row.detail.c_str());
    report.push_back(line);
  }
  char summary[160];
  std::snprintf(summary, sizeof summary,
                "summary: %zu metrics (%zu gated): %zu regression, "
                "%zu improvement",
                rows.size(), gated, regressions, improvements);
  report.push_back(summary);
  if (regressions > 0) {
    for (const Comparison& row : rows)
      if (row.gate && row.status == "regression")
        report.push_back("perfkit_compare: REGRESSION in '" + bench +
                         "': " + row.name + " (baseline " +
                         perfkit::format_number(row.baseline) + ", current " +
                         perfkit::format_number(row.current) + ", " +
                         row.detail + ")");
  } else if (improvements > 0) {
    report.push_back("perfkit_compare: improvements held out of the gate — "
                     "consider re-blessing bench/baselines/" + bench +
                     ".json");
  }

  // ------------------------------------------------------------ trajectory
  // One self-contained JSONL row per comparison: history accumulates across
  // CI runs (uploaded as an artifact) without any server-side state.
  if (!trajectory_path.empty()) {
    std::ofstream trajectory(trajectory_path, std::ios::app);
    if (!trajectory) {
      std::cerr << "perfkit_compare: cannot append to " << trajectory_path
                << "\n";
      return 2;
    }
    trajectory << "{\"perfkit_trajectory\": 1, \"bench\": \"" << bench
               << "\", \"schema_version\": "
               << perfkit::format_number(*current_schema)
               << ", \"current_git_sha\": \""
               << manifest_string(current, "git_sha")
               << "\", \"result\": \""
               << (regressions > 0 ? "regression" : "pass")
               << "\", \"metrics\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Comparison& row = rows[i];
      trajectory << (i > 0 ? ", " : "") << "{\"name\": \"" << row.name
                 << "\", \"baseline\": " << perfkit::format_number(row.baseline)
                 << ", \"current\": " << perfkit::format_number(row.current)
                 << ", \"gate\": " << (row.gate ? "true" : "false")
                 << ", \"status\": \"" << row.status << "\"}";
    }
    trajectory << "]}\n";
  }

  // ---------------------------------------------------------------- golden
  if (!expect_path.empty()) {
    std::vector<std::string> expected;
    std::ifstream golden(expect_path);
    if (!golden) {
      std::cerr << "perfkit_compare: cannot read golden file " << expect_path
                << "\n";
      return 2;
    }
    for (std::string line; std::getline(golden, line);) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      expected.push_back(line);
    }
    // Under --expect the exit status reports the GOLDEN verdict only (the
    // regression exit contract has its own plain-mode WILL_FAIL test):
    // conflating the two would make "golden matched a regression report"
    // indistinguishable from "golden did not match".
    if (report == expected) {
      std::printf("perfkit_compare: golden self-test passed (%zu lines, %s)\n",
                  report.size(), regressions > 0 ? "regression" : "clean");
      return 0;
    }
    std::cerr << "perfkit_compare: golden mismatch\n--- expected\n";
    for (const auto& line : expected) std::cerr << line << "\n";
    std::cerr << "--- actual\n";
    for (const auto& line : report) std::cerr << line << "\n";
    return 1;
  }

  for (const std::string& line : report) std::printf("%s\n", line.c_str());
  return regressions > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool bless_mode = false;
  std::string out_path, trajectory_path, expect_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bless") {
      bless_mode = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--trajectory" && i + 1 < argc) {
      trajectory_path = argv[++i];
    } else if (arg == "--expect" && i + 1 < argc) {
      expect_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "perfkit_compare: unknown option " << arg << "\n";
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  if (bless_mode) {
    if (out_path.empty() || positional.size() != 1) {
      std::cerr << "usage: perfkit_compare --bless --out BASELINE.json "
                   "CURRENT.json\n";
      return 2;
    }
    return bless(out_path, positional[0]);
  }
  if (positional.size() != 2) {
    std::cerr << "usage: perfkit_compare [--trajectory FILE.jsonl] "
                 "[--expect GOLDEN.txt] BASELINE.json CURRENT.json\n"
                 "       perfkit_compare --bless --out BASELINE.json "
                 "CURRENT.json\n";
    return 2;
  }
  return compare(positional[0], positional[1], trajectory_path, expect_path);
}
