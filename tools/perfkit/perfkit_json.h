// Minimal JSON machinery shared by the perfkit tools (perfkit_compare,
// perfkit_report). Plain ISO C++20, zero dependencies — same ground rules
// as tools/lint/rlcsim_lint.cpp: these run before the library builds and
// must never drag the build graph into the gating tools.
//
// Scope is deliberately small: parse the JSON the repo itself emits
// (BENCH_*.json, bench/baselines/*.json, RLCSIM_TRACE Chrome traces) into
// an ordered value tree, plus the pointer-with-selectors lookup the
// comparator's metric catalog is written in. Not a general JSON library —
// no streaming, no writer, no DOM mutation.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace perfkit {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Insertion order preserved: trajectory rows and blessed baselines must
  // round-trip in the order the emitter wrote, so diffs stay readable.
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [name, value] : object)
      if (name == key) return &value;
    return nullptr;
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i)
      if (text_[i] == '\n') ++line;
    throw std::runtime_error("JSON parse error at line " +
                             std::to_string(line) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = b;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') { out.push_back(c); continue; }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // BMP only (no surrogate pairs): nothing in this repo emits any,
          // and refusing beats silently mangling.
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escape unsupported");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size())
      fail("bad number '" + token + "'");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = value;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

inline JsonValue parse_json(const std::string& text) {
  return detail::Parser(text).parse_document();
}

inline JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_json(buffer.str());
  } catch (const std::runtime_error& error) {
    throw std::runtime_error(path + ": " + error.what());
  }
}

// Numeric view of a scalar: numbers pass through, booleans map to 1/0 (the
// comparator gates bit-identity booleans as exact-match numerics). Anything
// else — including null and a missing (nullptr) value — is nullopt.
inline std::optional<double> as_number(const JsonValue* v) {
  if (v == nullptr) return std::nullopt;
  if (v->kind == JsonValue::Kind::kNumber) return v->number;
  if (v->kind == JsonValue::Kind::kBool) return v->boolean ? 1.0 : 0.0;
  return std::nullopt;
}

// JSON-pointer-with-selectors lookup, the dialect the metric catalog uses:
//   /mor/gates/gate=q4_worst_pct/value
// Plain segments index object members. A `key=value` segment applied to an
// ARRAY picks the first element (an object) whose member `key` equals
// `value` — numerically when the member is a number, by "true"/"false" for
// booleans, verbatim for strings. Selectors exist so baselines survive
// array reordering (a run appended to "runs" must not shift every pointer).
// Returns nullptr as soon as any segment fails to resolve.
inline const JsonValue* resolve_pointer(const JsonValue& root,
                                        const std::string& pointer) {
  if (pointer.empty() || pointer[0] != '/') return nullptr;
  const JsonValue* node = &root;
  std::size_t pos = 1;
  while (pos <= pointer.size()) {
    const std::size_t slash = pointer.find('/', pos);
    const std::string segment = pointer.substr(
        pos, slash == std::string::npos ? std::string::npos : slash - pos);
    if (segment.empty()) return nullptr;
    const std::size_t eq = segment.find('=');
    if (node->kind == JsonValue::Kind::kArray && eq != std::string::npos) {
      const std::string key = segment.substr(0, eq);
      const std::string want = segment.substr(eq + 1);
      const JsonValue* match = nullptr;
      for (const JsonValue& element : node->array) {
        const JsonValue* member = element.find(key);
        if (member == nullptr) continue;
        bool equal = false;
        if (member->kind == JsonValue::Kind::kString) {
          equal = member->string == want;
        } else if (member->kind == JsonValue::Kind::kBool) {
          equal = want == (member->boolean ? "true" : "false");
        } else if (member->kind == JsonValue::Kind::kNumber) {
          char* end = nullptr;
          const double want_num = std::strtod(want.c_str(), &end);
          equal = end == want.c_str() + want.size() && !want.empty() &&
                  member->number == want_num;
        }
        if (equal) { match = &element; break; }
      }
      if (match == nullptr) return nullptr;
      node = match;
    } else if (node->kind == JsonValue::Kind::kObject) {
      node = node->find(segment);
      if (node == nullptr) return nullptr;
    } else {
      return nullptr;
    }
    if (slash == std::string::npos) break;
    pos = slash + 1;
  }
  return node;
}

// Canonical number rendering shared by the comparator's report, blessed
// baselines, and trajectory rows — one rendering so goldens and JSONL
// diffs never disagree about trailing digits. Integral values (the exact
// counters baselines gate) print as integers so they round-trip the
// parse→format→parse cycle losslessly; everything the benches emit carries
// at most 4 printed decimals, which %.10g reproduces exactly.
inline std::string format_number(double value) {
  char buffer[64];
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::fabs(value) < 9.0e15) {
    std::snprintf(buffer, sizeof buffer, "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof buffer, "%.10g", value);
  }
  return buffer;
}

}  // namespace perfkit
