// rlcsim_lint — project-invariant linter for the determinism contract.
//
// Every subsystem since PR 2 ships under one contract: bit-identical
// results at any thread count and any lane width. The scaling benches
// enforce it dynamically (memcmp gates), but only on the workloads they
// run. This linter enforces the *source-level* invariants the contract
// rests on, on every line of src/, bench/ and tests/, at every PR:
//
//   wallclock-scope       std::chrono::*::now(), time(), clock(),
//                         gettimeofday/clock_gettime in src/ outside
//                         src/obs/ — wall-clock reads belong in bench mains
//                         and the observability subsystem (whose telemetry
//                         is write-only by construction); anywhere else in
//                         library code they are either dead weight or a
//                         schedule-dependent input to a result. Library
//                         code that needs a duration uses obs::Stopwatch.
//   nondeterministic-source
//                         rand()/srand()/std::random_device/std::mt19937 in
//                         src/ — any randomness in a result-producing path
//                         must be a seeded, per-point deterministic stream
//                         plumbed through the API, never an ambient PRNG.
//   fp-contract           std::fma()/fmaf()/fmal() and FP_CONTRACT pragmas
//                         anywhere — an FMA fuses in one code path and not
//                         in its memcmp'd twin, voiding bit-identity (the
//                         same reason CMake rejects -ffp-contract=fast).
//   unordered-container   std::unordered_{map,set,...} in src/ — iteration
//                         order is hash-seed/layout dependent; a result
//                         assembled by iterating one is schedule lottery.
//                         Use std::map/std::set or sorted vectors.
//   thread-local          thread_local outside the reviewed allowlist —
//                         per-thread state is how worker identity leaks
//                         into results; every instance must be visibly
//                         justified (observability counters and the pool's
//                         own worker identity are the sanctioned cases).
//   lane-unroll           a batch-kernel lane loop (`for (... lane ... < W;`
//                         in numeric/sparse_batch.cpp or
//                         sim/transient_batch.cpp) without `#pragma GCC
//                         unroll 1` directly above it — the pragma is
//                         load-bearing: GCC fully peels W-trip loops before
//                         the vectorizer runs and cannot re-roll them, so a
//                         missing pragma silently de-vectorizes the kernel
//                         the ≥4x throughput gate is calibrated on.
//   kernel-restrict       a `.data()`-derived raw double* base in those two
//                         kernel files without __restrict — phantom
//                         aliasing between the SoA buffers otherwise forces
//                         scalar codegen (same gate as above).
//
// Suppressions: append `// rlcsim-lint: allow(<rule>[, <rule>...])` to the
// offending line or the line directly above it. Suppressions that suppress
// nothing are themselves violations (unused-suppression), so stale
// exceptions cannot linger invisibly. `git grep rlcsim-lint:` lists every
// sanctioned exception in the tree.
//
// Usage:
//   rlcsim_lint <root>                      lint <root>/{src,bench,tests}
//   rlcsim_lint <root> --expect <golden>    compare findings to a golden
//                                           file (fixture self-test)
//   rlcsim_lint --list-rules                print rule ids + summaries
//
// Exit status: 0 clean (or golden matches), 1 findings (or golden
// mismatch), 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

bool is_ident(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

// True when `token` occurs in `line` NOT preceded by an identifier
// character or '.' — so `time(` matches `std::time(` and bare `time(` but
// not `rise_time(` or `waveforms.time()` (member accessors are fine).
bool contains_word(const std::string& line, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    if (pos == 0) return true;
    const char prev = line[pos - 1];
    if (!is_ident(prev) && prev != '.') return true;
    pos += 1;
  }
  return false;
}

bool contains(const std::string& line, const std::string& token) {
  return line.find(token) != std::string::npos;
}

// `time(` needs one more refinement than contains_word: the C wall-clock
// call always takes an argument (`time(nullptr)`, `time(&t)`), while the
// project's Trace/Waveforms accessors are declared `time()` with none — so
// a match whose '(' is immediately closed is not a wall-clock read.
bool contains_time_call(const std::string& line) {
  std::size_t pos = 0;
  const std::string token = "time(";
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool word_start =
        pos == 0 || (!is_ident(line[pos - 1]) && line[pos - 1] != '.');
    const std::size_t after = pos + token.size();
    const bool has_argument = after < line.size() && line[after] != ')';
    if (word_start && has_argument) return true;
    pos += 1;
  }
  return false;
}

// Strips a trailing // comment (naive: the first "//" not inside a string
// literal) so prose in comments cannot trip the code rules. The RAW line is
// still used for suppression comments and the unroll-pragma check.
std::string strip_line_comment(const std::string& line) {
  bool in_string = false;
  char quote = 0;
  for (std::size_t i = 0; i + 1 < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == quote) {
        in_string = false;
      }
      continue;
    }
    if (c == '"' || c == '\'') {
      in_string = true;
      quote = c;
      continue;
    }
    if (c == '/' && line[i + 1] == '/') return line.substr(0, i);
  }
  return line;
}

enum class Scope { kSrcOnly, kSrcOutsideObs, kEverywhere, kBatchKernels };

struct Rule {
  const char* id;
  Scope scope;
  const char* summary;
  // Returns a non-empty message when `code` (comment-stripped) violates the
  // rule. `raw_prev` is the raw previous line (for the pragma check).
  std::string (*check)(const std::string& code, const std::string& raw_prev);
};

std::string check_wall_clock(const std::string& code, const std::string&) {
  if (contains(code, "::now(") || contains_time_call(code) ||
      contains_word(code, "clock(") || contains(code, "gettimeofday") ||
      contains(code, "clock_gettime"))
    return "wall-clock read in library code; timing belongs in bench mains "
           "or src/obs/ (use obs::Stopwatch for durations)";
  return {};
}

std::string check_random(const std::string& code, const std::string&) {
  if (contains_word(code, "rand(") || contains_word(code, "srand(") ||
      contains(code, "random_device") || contains(code, "mt19937") ||
      contains(code, "default_random_engine"))
    return "ambient randomness in library code; deterministic results "
           "require seeded per-point streams plumbed through the API";
  return {};
}

std::string check_fp_contract(const std::string& code, const std::string&) {
  if (contains_word(code, "fma(") || contains_word(code, "fmaf(") ||
      contains_word(code, "fmal(") || contains(code, "FP_CONTRACT"))
    return "explicit FMA / FP_CONTRACT pragma; asymmetric fusion between "
           "memcmp'd code paths breaks bit-identity";
  return {};
}

std::string check_unordered(const std::string& code, const std::string&) {
  if (contains(code, "unordered_"))
    return "unordered container in a result-producing path; iteration "
           "order is not deterministic — use std::map/std::set or a "
           "sorted vector";
  return {};
}

std::string check_thread_local(const std::string& code, const std::string&) {
  if (contains_word(code, "thread_local"))
    return "thread_local outside the reviewed allowlist; per-thread state "
           "must not influence results and every instance needs a visible "
           "justification";
  return {};
}

std::string check_lane_unroll(const std::string& code,
                              const std::string& raw_prev) {
  if (contains(code, "for (") && contains(code, "lane") &&
      contains(code, "< W;") && !contains(raw_prev, "#pragma GCC unroll 1"))
    return "batch-kernel lane loop without `#pragma GCC unroll 1` directly "
           "above it; GCC peels W-trip loops before vectorization and "
           "cannot re-roll them";
  return {};
}

std::string check_kernel_restrict(const std::string& code,
                                  const std::string&) {
  const bool pointer_decl =
      contains(code, "double*") || contains(code, "double *");
  if (pointer_decl && contains(code, "=") && contains(code, ".data()") &&
      !contains(code, "__restrict"))
    return "kernel base pointer from .data() without __restrict; phantom "
           "aliasing between SoA buffers forces scalar codegen";
  return {};
}

constexpr Rule kRules[] = {
    {"wallclock-scope", Scope::kSrcOutsideObs,
     "no wall-clock reads in src/ outside src/obs/ (bench mains and the "
     "observability subsystem only)",
     check_wall_clock},
    {"nondeterministic-source", Scope::kSrcOnly,
     "no ambient PRNGs (rand/random_device/mt19937) in src/", check_random},
    {"fp-contract", Scope::kEverywhere,
     "no explicit std::fma or FP_CONTRACT pragmas anywhere", check_fp_contract},
    {"unordered-container", Scope::kSrcOnly,
     "no unordered containers in src/ result paths", check_unordered},
    {"thread-local", Scope::kEverywhere,
     "thread_local requires an inline allow() justification",
     check_thread_local},
    {"lane-unroll", Scope::kBatchKernels,
     "batch-kernel lane loops need `#pragma GCC unroll 1`", check_lane_unroll},
    {"kernel-restrict", Scope::kBatchKernels,
     "batch-kernel .data() base pointers need __restrict",
     check_kernel_restrict},
};

// The two files whose lane kernels carry the load-bearing annotations.
bool is_batch_kernel_file(const std::string& rel_path) {
  return rel_path == "src/numeric/sparse_batch.cpp" ||
         rel_path == "src/sim/transient_batch.cpp";
}

struct Finding {
  std::string rel_path;
  std::size_t line;
  std::string rule;
  std::string message;
};

// Parses `// rlcsim-lint: allow(a, b)` out of a raw line; returns the rule
// ids. Empty result = no suppression comment on this line.
std::vector<std::string> parse_allows(const std::string& raw) {
  std::vector<std::string> out;
  const std::string marker = "rlcsim-lint: allow(";
  const std::size_t start = raw.find(marker);
  if (start == std::string::npos) return out;
  const std::size_t open = start + marker.size();
  const std::size_t close = raw.find(')', open);
  if (close == std::string::npos) return out;
  std::string inside = raw.substr(open, close - open);
  std::size_t pos = 0;
  while (pos <= inside.size()) {
    std::size_t comma = inside.find(',', pos);
    if (comma == std::string::npos) comma = inside.size();
    std::string id = inside.substr(pos, comma - pos);
    // trim
    while (!id.empty() && (id.front() == ' ' || id.front() == '\t'))
      id.erase(id.begin());
    while (!id.empty() && (id.back() == ' ' || id.back() == '\t'))
      id.pop_back();
    if (!id.empty()) out.push_back(id);
    pos = comma + 1;
  }
  return out;
}

struct Suppression {
  std::size_t line;  // 1-based line the comment sits on
  std::string rule;
  bool used = false;
};

void scan_file(const fs::path& path, const std::string& rel_path,
               const std::string& top_dir, std::vector<Finding>& findings) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "rlcsim_lint: cannot read " << path << "\n";
    std::exit(2);
  }
  std::vector<std::string> raw_lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    raw_lines.push_back(line);
  }

  std::vector<Suppression> suppressions;
  for (std::size_t i = 0; i < raw_lines.size(); ++i)
    for (const std::string& rule : parse_allows(raw_lines[i]))
      suppressions.push_back({i + 1, rule, false});

  const bool batch_kernel = is_batch_kernel_file(rel_path);
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string code = strip_line_comment(raw_lines[i]);
    const std::string& raw_prev = i > 0 ? raw_lines[i - 1] : std::string();
    for (const Rule& rule : kRules) {
      if (rule.scope == Scope::kSrcOnly && top_dir != "src") continue;
      // The obs subsystem is the one sanctioned home for wall-clock reads
      // in src/: its telemetry is write-only, so a clock there cannot feed
      // a result. Everything else in src/obs/ is still linted.
      if (rule.scope == Scope::kSrcOutsideObs &&
          (top_dir != "src" || rel_path.rfind("src/obs/", 0) == 0))
        continue;
      if (rule.scope == Scope::kBatchKernels && !batch_kernel) continue;
      const std::string message = rule.check(code, raw_prev);
      if (message.empty()) continue;
      // Suppressed by an allow() on this line or the line directly above?
      bool suppressed = false;
      for (Suppression& s : suppressions) {
        if (s.rule == rule.id && (s.line == i + 1 || s.line == i)) {
          s.used = true;
          suppressed = true;
        }
      }
      if (!suppressed)
        findings.push_back({rel_path, i + 1, rule.id, message});
    }
  }

  for (const Suppression& s : suppressions)
    if (!s.used)
      findings.push_back(
          {rel_path, s.line, "unused-suppression",
           "allow(" + s.rule + ") suppresses nothing; stale exceptions must "
           "be removed, not accumulated"});
}

bool has_source_ext(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".h" || ext == ".hpp" || ext == ".cc";
}

int list_rules() {
  for (const Rule& rule : kRules)
    std::printf("%-24s %s\n", rule.id, rule.summary);
  std::printf("%-24s %s\n", "unused-suppression",
              "allow() comments that suppress nothing are violations");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root_arg;
  std::string expect_arg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") return list_rules();
    if (arg == "--expect") {
      if (i + 1 >= argc) {
        std::cerr << "rlcsim_lint: --expect needs a golden file\n";
        return 2;
      }
      expect_arg = argv[++i];
    } else if (root_arg.empty()) {
      root_arg = arg;
    } else {
      std::cerr << "rlcsim_lint: unexpected argument " << arg << "\n";
      return 2;
    }
  }
  if (root_arg.empty()) {
    std::cerr << "usage: rlcsim_lint <root> [--expect golden.txt] | "
                 "--list-rules\n";
    return 2;
  }

  const fs::path root(root_arg);
  std::vector<Finding> findings;
  for (const char* top_dir : {"src", "bench", "tests"}) {
    const fs::path dir = root / top_dir;
    if (!fs::exists(dir)) continue;
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(dir))
      if (entry.is_regular_file() && has_source_ext(entry.path()))
        files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
      const std::string rel_path =
          fs::relative(file, root).generic_string();
      scan_file(file, rel_path, top_dir, findings);
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.rel_path != b.rel_path) return a.rel_path < b.rel_path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  if (!expect_arg.empty()) {
    // Golden self-test: compare `path:line: rule` lines (messages excluded
    // so wording can evolve without re-pinning) against the golden file.
    // '#' lines and blanks in the golden are comments.
    std::vector<std::string> expected;
    std::ifstream golden(expect_arg);
    if (!golden) {
      std::cerr << "rlcsim_lint: cannot read golden file " << expect_arg
                << "\n";
      return 2;
    }
    for (std::string line; std::getline(golden, line);) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      expected.push_back(line);
    }
    std::vector<std::string> actual;
    for (const Finding& f : findings)
      actual.push_back(f.rel_path + ":" + std::to_string(f.line) + ": " +
                       f.rule);
    if (actual == expected) {
      std::printf("rlcsim_lint: golden self-test passed (%zu findings)\n",
                  actual.size());
      return 0;
    }
    std::cerr << "rlcsim_lint: golden mismatch\n--- expected\n";
    for (const auto& line : expected) std::cerr << line << "\n";
    std::cerr << "--- actual\n";
    for (const auto& line : actual) std::cerr << line << "\n";
    return 1;
  }

  for (const Finding& f : findings)
    std::cerr << f.rel_path << ":" << f.line << ": " << f.rule << ": "
              << f.message << "\n";
  if (!findings.empty()) {
    std::cerr << "rlcsim_lint: " << findings.size()
              << " violation(s) of the determinism contract (suppress a "
                 "justified exception with `// rlcsim-lint: allow(<rule>)`)\n";
    return 1;
  }
  std::printf("rlcsim_lint: clean\n");
  return 0;
}
