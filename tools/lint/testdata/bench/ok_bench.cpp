// Fixture: bench mains OWN wall-clock timing — none of the src/-scoped
// rules apply here. But the everywhere-scoped rules still do: the fma()
// below must be flagged even in bench/.
#include <chrono>
#include <cmath>

int main() {
  const auto start = std::chrono::steady_clock::now();  // fine in bench/
  const double fused = std::fma(2.0, 3.0, 4.0);  // planted: fp-contract
  const auto elapsed = std::chrono::steady_clock::now() - start;  // fine
  return (std::chrono::duration<double>(elapsed).count() + fused) > 0.0 ? 0
                                                                        : 1;
}
