// Fixture: tests may read clocks (src/-scoped rules don't apply), but the
// everywhere-scoped thread-local rule still bites without a justification.
#include <chrono>

thread_local int test_scratch = 0;  // planted: thread-local

int probe() {
  const auto t0 = std::chrono::steady_clock::now();  // fine in tests/
  (void)t0;
  return ++test_scratch;
}
