// Fixture: thread_local outside the allowlist, plus a justified instance
// and a stale suppression that must itself be flagged.
namespace fixture {

thread_local int per_worker_accumulator = 0;  // planted: thread-local

// Observability-only counter — the sanctioned shape.
// rlcsim-lint: allow(thread-local)
thread_local int sanctioned_counter = 0;

int bump() { return ++per_worker_accumulator + ++sanctioned_counter; }

// A suppression with no matching violation is stale and must be reported.
// rlcsim-lint: allow(wallclock-scope)
int no_violation_here() { return 0; }  // planted: unused-suppression above

}  // namespace fixture
