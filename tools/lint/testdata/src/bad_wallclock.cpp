// Fixture: wall-clock reads in library code. Each planted violation below
// is pinned by expected.txt; the suppressed ones must NOT be reported.
#include <chrono>
#include <ctime>

namespace fixture {

double elapsed() {
  const auto start = std::chrono::steady_clock::now();  // planted: wall-clock
  const std::time_t stamp = std::time(nullptr);         // planted: wall-clock
  (void)stamp;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();  // the now() above is on its own line and planted too
}

// A reviewed one-off exception: the suppression shape (real library code
// should reach for obs::Stopwatch or live in src/obs/ instead).
double sanctioned() {
  const auto t = std::chrono::steady_clock::now();  // rlcsim-lint: allow(wallclock-scope)
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

// Accessors NAMED time are not wall-clock reads and must not be flagged.
struct Trace {
  double time() const { return 0.0; }
};
double accessor(const Trace& trace) { return trace.time(); }

}  // namespace fixture
