// Fixture: ambient randomness in library code.
#include <cstdlib>
#include <random>

namespace fixture {

double noisy() {
  std::srand(42);                      // planted: nondeterministic-source
  const int raw = std::rand();         // planted: nondeterministic-source
  std::random_device entropy;          // planted: nondeterministic-source
  std::mt19937 rng(entropy());         // planted: nondeterministic-source
  return static_cast<double>(raw + static_cast<int>(rng()));
}

// Identifiers merely CONTAINING the tokens must not be flagged.
int operand(int x) { return x; }
int spread_of(int x) { return operand(x); }

}  // namespace fixture
