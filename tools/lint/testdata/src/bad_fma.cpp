// Fixture: explicit FMA and FP_CONTRACT pragmas.
#include <cmath>

#pragma STDC FP_CONTRACT ON  // planted: fp-contract

namespace fixture {

double fused(double a, double b, double c) {
  return std::fma(a, b, c);  // planted: fp-contract
}

// sigma( contains "ma(" but not the fma( token.
double sigma(double x) { return x; }
double uses_sigma(double x) { return sigma(x); }

}  // namespace fixture
