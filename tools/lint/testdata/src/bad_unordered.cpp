// Fixture: unordered-container iteration in a result-producing path.
#include <string>
#include <unordered_map>  // planted: unordered-container

namespace fixture {

double sum_values(const std::unordered_map<std::string, double>& m) {  // planted: unordered-container
  double total = 0.0;
  for (const auto& [key, value] : m) total += value;  // order-dependent!
  return total;
}

}  // namespace fixture
