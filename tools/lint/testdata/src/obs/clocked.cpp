// Fixture: the src/obs/ wall-clock carve-out. The now() reads below are in
// the observability subsystem's directory, so wallclock-scope must NOT
// report them — no allow() comment needed. The planted unordered-container
// violation proves the file is still scanned by every other rule.
#include <chrono>
#include <unordered_map>

namespace fixture::obs {

double span_seconds() {
  const auto start = std::chrono::steady_clock::now();  // NOT flagged: src/obs/
  const auto stop = std::chrono::steady_clock::now();   // NOT flagged: src/obs/
  return std::chrono::duration<double>(stop - start).count();
}

std::unordered_map<int, double> planted;  // planted: unordered-container

}  // namespace fixture::obs
