// Fixture standing in for the REAL src/numeric/sparse_batch.cpp (the
// batch-kernel rules key on this path): a lane loop missing its
// load-bearing pragma and a kernel base pointer missing __restrict.
#include <vector>

namespace fixture {

template <int W>
void kernel(std::vector<double>& values) {
  double* x = values.data();  // planted: kernel-restrict
  for (int lane = 0; lane < W; ++lane) x[lane] = 0.0;  // planted: lane-unroll

  double* __restrict const y = values.data();  // compliant: not flagged
#pragma GCC unroll 1
  for (int lane = 0; lane < W; ++lane) y[lane] = 1.0;  // compliant

  // Loops over a runtime lane count are management loops, not kernels.
  const int lanes = W;
  for (int lane = 0; lane < lanes; ++lane) y[lane] += 1.0;
}

template void kernel<4>(std::vector<double>&);

}  // namespace fixture
