// Dense-vs-sparse solver scaling on the paper's core workload: N-segment
// distributed RLC ladders (gate + line + load) swept over segment count.
//
// For each N this runs (a) a transient (4000 steps, trapezoidal with
// breakpoint BE damping) and (b) a 100-point logarithmic AC sweep, with the
// solver forced dense and forced sparse, and emits one JSON document on
// stdout: wall times, LU factorization counts, and the max abs waveform
// deviation of the sparse path from the dense oracle. The dense runs are
// skipped above the size where O(n^3) stops being benchmarkable (they would
// dominate the total runtime by minutes); the JSON carries null there.
//
// Usage: solver_scaling [--fast]
//   --fast   caps N at 500 (CI smoke run)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/ac.h"
#include "sim/builders.h"
#include "sim/transient.h"
#include "tline/rc_line.h"
#include "tline/transfer.h"

namespace {

using namespace rlcsim;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// The benchmark workload: a strongly inductive on-chip line (same flavor as
// the perf_models bench system) where the paper's analysis matters.
const tline::GateLineLoad& bench_system() {
  static const tline::GateLineLoad system{500.0, {500.0, 1e-7, 1e-12}, 0.5e-12};
  return system;
}

double transient_horizon() {
  const auto& s = bench_system();
  const double elmore =
      tline::elmore_delay(s.driver_resistance, s.line.total_resistance,
                          s.line.total_capacitance, s.load_capacitance);
  const double tof = std::sqrt(s.line.total_inductance *
                               (s.line.total_capacitance + s.load_capacitance));
  return 8.0 * std::max(elmore, tof);
}

struct TransientRun {
  double seconds = 0.0;
  std::size_t factorizations = 0;
  sim::TransientResult result;
};

TransientRun run_transient_with(int segments, sim::SolverKind solver) {
  const sim::Circuit circuit = sim::build_gate_line_load(bench_system(), segments);
  sim::TransientOptions options;
  options.t_stop = transient_horizon();  // dt = 0 -> exactly 4000 nominal steps
  options.solver = solver;
  TransientRun run;
  const auto start = Clock::now();
  run.result = sim::run_transient(circuit, options);
  run.seconds = seconds_since(start);
  run.factorizations = run.result.lu_factorizations;
  return run;
}

// Max abs deviation between two runs over every recorded node waveform.
double max_waveform_deviation(const sim::TransientResult& a,
                              const sim::TransientResult& b) {
  double max_err = 0.0;
  for (const auto& node : a.waveforms.node_names()) {
    const sim::Trace ta = a.waveforms.trace(node);
    const sim::Trace tb = b.waveforms.trace(node);
    const auto& va = ta.value();
    const auto& vb = tb.value();
    const std::size_t n = std::min(va.size(), vb.size());
    for (std::size_t i = 0; i < n; ++i)
      max_err = std::max(max_err, std::fabs(va[i] - vb[i]));
    if (va.size() != vb.size()) max_err = 1.0;  // grid mismatch: flag loudly
  }
  return max_err;
}

struct AcRun {
  double seconds = 0.0;
  sim::AcSweepInfo info;
  std::vector<sim::AcSample> samples;
};

AcRun run_ac_with(int segments, sim::SolverKind solver) {
  const sim::Circuit circuit = sim::build_gate_line_load(bench_system(), segments);
  const auto freqs = sim::log_frequencies(1e6, 1e11, 100);
  AcRun run;
  const auto start = Clock::now();
  run.samples = sim::ac_transfer(circuit, "vsrc", "out", freqs,
                                 solver, &run.info);
  run.seconds = seconds_since(start);
  return run;
}

double max_ac_deviation(const AcRun& a, const AcRun& b) {
  double max_err = 0.0;
  for (std::size_t i = 0; i < a.samples.size(); ++i)
    max_err = std::max(max_err, std::abs(a.samples[i].value - b.samples[i].value));
  return max_err;
}

void json_number_or_null(const char* key, double value, bool present) {
  if (present)
    std::printf("\"%s\": %.6e", key, value);
  else
    std::printf("\"%s\": null", key);
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;
  if (argc > 2 || (argc == 2 && !fast)) {
    std::fprintf(stderr, "usage: %s [--fast]\n", argv[0]);
    return 2;
  }
  const std::vector<int> sizes =
      fast ? std::vector<int>{50, 100, 200, 500}
           : std::vector<int>{50, 100, 200, 500, 1000, 2000};
  // O(n^3) ceilings: beyond these the dense oracle takes minutes per point.
  const int dense_transient_cap = 1000;
  const int dense_ac_cap = 200;

  std::printf("{\n");
  benchutil::manifest_json_block("solver_scaling");
  std::printf("  \"workload\": \"gate + N-segment RLC ladder + load "
              "(Rtr=500, Rt=500, Lt=1e-7, Ct=1e-12, CL=0.5e-12)\",\n");

  std::printf("  \"transient\": [\n");
  for (std::size_t idx = 0; idx < sizes.size(); ++idx) {
    const int n = sizes[idx];
    const TransientRun sparse = run_transient_with(n, sim::SolverKind::kSparse);
    const bool have_dense = n <= dense_transient_cap;
    TransientRun dense;
    double max_err = 0.0;
    if (have_dense) {
      dense = run_transient_with(n, sim::SolverKind::kDense);
      max_err = max_waveform_deviation(dense.result, sparse.result);
    }
    std::printf("    {\"segments\": %d, \"unknowns\": %zu, \"steps\": %zu, ",
                n, sim::MnaAssembler(sim::build_gate_line_load(bench_system(), n))
                       .unknown_count(),
                sparse.result.steps_taken);
    std::printf("\"sparse_s\": %.6e, \"sparse_factorizations\": %zu, ",
                sparse.seconds, sparse.factorizations);
    json_number_or_null("dense_s", dense.seconds, have_dense);
    std::printf(", ");
    if (have_dense)
      std::printf("\"dense_factorizations\": %zu, ", dense.factorizations);
    else
      std::printf("\"dense_factorizations\": null, ");
    json_number_or_null("speedup", have_dense ? dense.seconds / sparse.seconds : 0.0,
                        have_dense);
    std::printf(", ");
    json_number_or_null("max_abs_err", max_err, have_dense);
    std::printf("}%s\n", idx + 1 < sizes.size() ? "," : "");
    std::fflush(stdout);
  }
  std::printf("  ],\n");

  std::printf("  \"ac\": [\n");
  for (std::size_t idx = 0; idx < sizes.size(); ++idx) {
    const int n = sizes[idx];
    const AcRun sparse = run_ac_with(n, sim::SolverKind::kSparse);
    const bool have_dense = n <= dense_ac_cap;
    AcRun dense;
    double max_err = 0.0;
    if (have_dense) {
      dense = run_ac_with(n, sim::SolverKind::kDense);
      max_err = max_ac_deviation(dense, sparse);
    }
    std::printf("    {\"segments\": %d, \"points\": %zu, ", n, sparse.samples.size());
    std::printf("\"sparse_s\": %.6e, \"symbolic_factorizations\": %zu, "
                "\"numeric_factorizations\": %zu, ",
                sparse.seconds, sparse.info.symbolic_factorizations,
                sparse.info.numeric_factorizations);
    json_number_or_null("dense_s", dense.seconds, have_dense);
    std::printf(", ");
    json_number_or_null("speedup", have_dense ? dense.seconds / sparse.seconds : 0.0,
                        have_dense);
    std::printf(", ");
    json_number_or_null("max_abs_err", max_err, have_dense);
    std::printf("}%s\n", idx + 1 < sizes.size() ? "," : "");
    std::fflush(stdout);
  }
  std::printf("  ],\n");
  benchutil::metrics_json_block(/*last=*/true);
  std::printf("}\n");
  return 0;
}
