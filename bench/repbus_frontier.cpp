// Repeater-bus frontier: stage-composed reduced chains vs the cascaded-MNA
// reference, and the crosstalk-aware (h, k, placement) optimizer. Emits one
// JSON document; the EXIT STATUS is the gate, so CI fails when any of the
// subsystem's three headline claims regresses:
//
//   1. ACCURACY  — stage-composed victim delay within 3% of the full
//      cascaded-MNA chain on the 5-line Table-1-derived bus (Rt = 500 ohm,
//      Lt = 10 nH, Ct = 1 pF line; R0 C0 = 15 ps repeaters), across
//      uniform/staggered/interleaved x same-/opposite-phase.
//   2. SPEEDUP   — the optimizer's inner loop (one stage-model build + three
//      closed-form pattern walks per candidate) is >= 10x faster per
//      candidate than the equivalent three cascaded transients.
//   3. PLACEMENT — staggered placement STRICTLY improves the opposite-phase
//      worst-case MNA delay vs uniform at equal repeater area (the
//      equal-driver-count staggering guarantees equal area by construction),
//      and cuts quiet-victim noise.
//
// Plus the standard determinism contract: the optimizer grid is bit-identical
// at 1 and 3 threads (per-topology symbolic seeding, like every sweep).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "repbus/bus_chain.h"
#include "repbus/optimize.h"
#include "repbus/stage_compose.h"
#include "sweep/sweep.h"

using namespace rlcsim;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool gate(const char* name, double value, double limit, bool* pass) {
  const bool ok = value <= limit;
  if (!ok) *pass = false;
  std::printf("    {\"gate\": \"%s\", \"value\": %.4f, \"limit\": %.4f, "
              "\"pass\": %s}",
              name, value, limit, ok ? "true" : "false");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;

  // Table-1-derived bus: the Rt = 500 ohm / Lt = 1e-8 H / Ct = 1 pF cell of
  // the paper's grid, five coupled copies (Cc/Ct = 0.4, Lm/Lt = 0.25), with
  // the R0 C0 = 15 ps repeater technology the repeater suites use.
  const tline::LineParams line{500.0, 1e-8, 1e-12};
  const core::MinBuffer buffer{3000.0, 5e-15, 1.0, 0.0};
  const tline::CoupledBus bus = tline::make_bus(5, line, 0.4, 0.25);
  const core::RepeaterDesign isolated = core::ismail_friedman_rlc(line, buffer);

  repbus::RepeaterBusSpec spec;
  spec.bus = bus;
  spec.sections = 4;
  spec.size = 32.0;
  spec.buffer = buffer;
  spec.segments_per_section = 12;

  bool pass = true;
  std::printf("{\n");
  benchutil::manifest_json_block("repbus_frontier");
  std::printf("  \"bench\": \"repbus_frontier\",\n");
  std::printf("  \"bus\": {\"lines\": %d, \"cc_ratio\": 0.4, \"lm_ratio\": 0.25,"
              " \"sections\": %d, \"size\": %.1f},\n",
              bus.lines, spec.sections, spec.size);
  std::printf("  \"isolated_eq19\": {\"h_opt\": %.2f, \"k_opt\": %.2f, "
              "\"delay_ps\": %.2f},\n",
              isolated.size, isolated.sections,
              core::total_delay(line, buffer, isolated) * 1e12);

  // ------------------------------------------- compose-vs-MNA cross-check
  const repbus::Placement placements[] = {repbus::Placement::kUniform,
                                          repbus::Placement::kStaggered,
                                          repbus::Placement::kInterleaved};
  const core::SwitchingPattern patterns[] = {
      core::SwitchingPattern::kSamePhase, core::SwitchingPattern::kOppositePhase};

  double worst_delay_err = 0.0;
  double mna_seconds = 0.0, composed_seconds = 0.0;
  double uniform_opposite_mna = 0.0, staggered_opposite_mna = 0.0;
  double uniform_noise_mna = 0.0, staggered_noise_mna = 0.0;
  std::printf("  \"placements\": [\n");
  for (std::size_t p = 0; p < 3; ++p) {
    spec.placement = placements[p];
    double t0 = now_seconds();
    const repbus::StageModels models = repbus::build_stage_models(spec, 4);
    composed_seconds += now_seconds() - t0;
    std::printf("    {\"placement\": \"%s\", \"patterns\": [",
                repbus::placement_name(placements[p]));
    for (std::size_t q = 0; q < 2; ++q) {
      t0 = now_seconds();
      const repbus::ChainMetrics mna =
          repbus::simulate_bus_chain(spec, patterns[q]);
      mna_seconds += now_seconds() - t0;
      t0 = now_seconds();
      const repbus::ComposedChainMetrics composed =
          repbus::compose_bus_chain(spec, patterns[q], models);
      composed_seconds += now_seconds() - t0;
      const double err =
          benchutil::pct(*composed.victim_delay_50, *mna.victim_delay_50);
      worst_delay_err = std::max(worst_delay_err, std::fabs(err));
      if (placements[p] == repbus::Placement::kUniform &&
          patterns[q] == core::SwitchingPattern::kOppositePhase)
        uniform_opposite_mna = *mna.victim_delay_50;
      if (placements[p] == repbus::Placement::kStaggered &&
          patterns[q] == core::SwitchingPattern::kOppositePhase)
        staggered_opposite_mna = *mna.victim_delay_50;
      std::printf("{\"pattern\": \"%s\", \"mna_ps\": %.2f, \"composed_ps\": "
                  "%.2f, \"err_pct\": %.3f}%s",
                  core::switching_pattern_name(patterns[q]),
                  *mna.victim_delay_50 * 1e12, *composed.victim_delay_50 * 1e12,
                  err, q == 0 ? ", " : "");
    }
    // Quiet-victim noise: MNA receiver metric (the placement comparison
    // below rides these; the composed model's worst-stage metric is gated
    // in tests, not here).
    double t1 = now_seconds();
    const repbus::ChainMetrics quiet =
        repbus::simulate_bus_chain(spec, core::SwitchingPattern::kQuietVictim);
    mna_seconds += now_seconds() - t1;
    t1 = now_seconds();
    const repbus::ComposedChainMetrics quiet_composed = repbus::compose_bus_chain(
        spec, core::SwitchingPattern::kQuietVictim, models);
    composed_seconds += now_seconds() - t1;
    if (placements[p] == repbus::Placement::kUniform)
      uniform_noise_mna = quiet.peak_noise;
    if (placements[p] == repbus::Placement::kStaggered)
      staggered_noise_mna = quiet.peak_noise;
    // Glitch propagation is part of the quiet-victim record now: a fired
    // quiet-armed repeater means the noise number describes a glitched net.
    std::printf("], \"quiet_noise_mna_v\": %.4f, "
                "\"glitch_fired_mna\": %s, \"glitch_depth_mna\": %d, "
                "\"glitch_fired_composed\": %s, \"glitch_depth_composed\": %d, "
                "\"area\": %.0f}%s\n",
                quiet.peak_noise, quiet.glitch_fired ? "true" : "false",
                quiet.glitch_depth,
                quiet_composed.glitch_fired ? "true" : "false",
                quiet_composed.glitch_depth, repbus::repeater_area(spec),
                p + 1 < 3 ? "," : "");
  }
  std::printf("  ],\n");

  // Per-candidate wall time: 3 MNA patterns vs (models + 3 composed walks),
  // accumulated over the 3 placements above — the optimizer's actual inner
  // loop against the dynamic-simulation alternative.
  const double mna_per_candidate = mna_seconds / 3.0;
  const double composed_per_candidate = composed_seconds / 3.0;
  const double speedup = mna_per_candidate / composed_per_candidate;
  std::printf("  \"inner_loop\": {\"mna_ms_per_candidate\": %.1f, "
              "\"composed_ms_per_candidate\": %.1f, \"speedup\": %.1f},\n",
              1e3 * mna_per_candidate, 1e3 * composed_per_candidate, speedup);

  // ------------------------------------------------------------ optimizer
  repbus::OptimizerOptions optimizer;
  optimizer.segments_per_section = 12;
  if (fast) {
    optimizer.sizes = {24.0, 32.0};
    optimizer.sections = {3, 4};
  }
  std::vector<double> reference_values;
  bool identical = true;
  std::size_t candidates = 0;
  const char* best_placement = "";
  for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    sweep::EngineOptions engine_options;
    engine_options.threads = threads;
    const sweep::SweepEngine engine(engine_options);
    const repbus::BusOptimizationResult result =
        repbus::optimize_bus_repeaters(bus, buffer, optimizer, engine);
    std::vector<double> values;
    for (const auto& eval : result.evaluations) {
      values.push_back(eval.worst_delay);
      values.push_back(eval.noise);
    }
    if (threads == 1) {
      reference_values = values;
      candidates = result.evaluations.size();
      if (result.best)
        best_placement = repbus::placement_name(result.best->placement);
      std::printf("  \"optimizer\": {\"candidates\": %zu, \"frontier\": %zu,\n",
                  result.evaluations.size(), result.frontier.size());
      if (result.best)
        std::printf("    \"best\": {\"h\": %.1f, \"k\": %d, \"placement\": "
                    "\"%s\", \"worst_delay_ps\": %.1f, \"noise_v\": %.4f, "
                    "\"area\": %.0f},\n",
                    result.best->size, result.best->sections,
                    repbus::placement_name(result.best->placement),
                    result.best->worst_delay * 1e12, result.best->noise,
                    result.best->area);
      std::printf("    \"isolated_delay_ps\": %.1f},\n",
                  result.isolated_delay * 1e12);
    } else {
      identical = values == reference_values;  // exact, bit-for-bit
    }
  }
  std::printf("  \"optimizer_determinism\": {\"candidates\": %zu, "
              "\"best_placement\": \"%s\", "
              "\"bit_identical_1_vs_3_threads\": %s},\n",
              candidates, best_placement, identical ? "true" : "false");
  if (!identical) pass = false;

  // ----------------------------------------------------------------- gates
  std::printf("  \"gates\": [\n");
  gate("composed_vs_mna_worst_delay_pct", worst_delay_err, 3.0, &pass);
  std::printf(",\n");
  // Speedup gate framed as a ratio limit so `value <= limit` reads uniformly.
  gate("min_speedup_x", 10.0 / std::max(speedup, 1e-9), 1.0, &pass);
  std::printf(",\n");
  // Staggered must STRICTLY beat uniform on the opposite-phase worst case at
  // equal area (ratio < 1).
  gate("staggered_over_uniform_opposite_delay",
       staggered_opposite_mna / uniform_opposite_mna, 0.999, &pass);
  std::printf(",\n");
  gate("staggered_over_uniform_quiet_noise",
       staggered_noise_mna / uniform_noise_mna, 0.95, &pass);
  std::printf("\n  ],\n");
  benchutil::metrics_json_block();
  std::printf("  \"pass\": %s\n}\n", pass ? "true" : "false");
  return pass ? 0 : 1;
}
