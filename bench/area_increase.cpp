// Reproduces eq. (18): the percent increase in total repeater area caused by
// RC-only sizing, plus the power-consumption comparison the paper argues
// qualitatively.
//
// Paper anchors: %AI = 154% at T_{L/R} = 3 and 435% at T = 5; "T = 5 is
// common for a current 0.25 um technology".
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/repeater.h"
#include "core/scaling.h"
#include "tech/nodes.h"

using namespace rlcsim;

int main() {
  benchutil::title("EQ 18 — % repeater area increase from RC-only sizing");

  std::printf("\n%6s | %12s | %12s | %s\n", "T_L/R", "eq.(18)", "from h',k'",
              "paper anchor");
  benchutil::row_rule(56);
  for (double t : {0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 7.0, 10.0}) {
    const double closed = core::area_increase_percent(t);
    const double from_factors =
        100.0 * (1.0 / (core::h_error_factor(t) * core::k_error_factor(t)) - 1.0);
    if (t == 3.0)
      std::printf("%6.1f | %11.1f%% | %11.1f%% | 154%%\n", t, closed, from_factors);
    else if (t == 5.0)
      std::printf("%6.1f | %11.1f%% | %11.1f%% | 435%%\n", t, closed, from_factors);
    else
      std::printf("%6.1f | %11.1f%% | %11.1f%% |\n", t, closed, from_factors);
  }

  benchutil::section("worked example: 20 mm wide clock wire at the 250nm node");
  const tech::DeviceParams node = tech::node_250nm();
  const auto pul = tech::extract(tech::wide_clock_wire(node));
  const tline::LineParams line = tline::make_line(pul, 20e-3);
  const core::MinBuffer buf = tech::as_min_buffer(node);
  const double t = core::t_lr(line, buf);
  const core::RepeaterDesign rc = core::bakoglu_rc(line, buf);
  const core::RepeaterDesign rlc = core::ismail_friedman_rlc(line, buf);
  std::printf("extracted: R=%.1f ohm/mm, L=%.3f nH/mm, C=%.1f fF/mm -> T_L/R=%.2f\n",
              pul.resistance * 1e-3, pul.inductance * 1e-3 * 1e9,
              pul.capacitance * 1e-3 * 1e15, t);
  std::printf("RC  sizing: h=%6.1f  k=%5.1f  area=%8.0f um^2\n", rc.size, rc.sections,
              core::repeater_area(buf, rc) * 1e12);
  std::printf("RLC sizing: h=%6.1f  k=%5.1f  area=%8.0f um^2\n", rlc.size,
              rlc.sections, core::repeater_area(buf, rlc) * 1e12);
  std::printf("area increase from RC sizing: %.0f%% (eq. 18 at this T: %.0f%%)\n",
              100.0 * (core::repeater_area(buf, rc) / core::repeater_area(buf, rlc) -
                       1.0),
              core::area_increase_percent(t));

  benchutil::section("dynamic power of the repeater system (1 GHz, node Vdd)");
  const double f = 1e9;
  const double p_rc = core::dynamic_power(line, buf, rc, f, node.vdd);
  const double p_rlc = core::dynamic_power(line, buf, rlc, f, node.vdd);
  std::printf("RC  sizing: %7.2f mW\n", p_rc * 1e3);
  std::printf("RLC sizing: %7.2f mW\n", p_rlc * 1e3);
  std::printf("power saved by RLC-aware sizing: %.1f%%\n",
              100.0 * (p_rc - p_rlc) / p_rc);
  std::printf(
      "\nPaper: \"power consumption ... is expected to be much less in the case\n"
      "of an RLC model ... due to the increased repeater area for the RC case\"\n"
      "— reproduced quantitatively above.\n");
  return 0;
}
