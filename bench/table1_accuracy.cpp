// Reproduces Table 1: eq. (9) versus dynamic circuit simulation for a CMOS
// gate driving a distributed RLC line.
//
// Paper setup: Ct = 1 pF, Rtr = 500 ohm; RT in {0.1, 0.5, 1.0} (so
// Rt = Rtr / RT), CT in {0.1, 0.5, 1.0} (CL = CT * Ct), Lt in
// {1e-5, 1e-6, 1e-7, 1e-8} H. AS/X is replaced by our two reference engines:
// the MNA transient simulator on a 120-segment ladder and numerical
// inversion of the exact transfer function (printed: the MNA number; the
// two agree to < 0.5%, which is also verified here).
//
// Both the eq. (9) grid and the 36-cell transient grid are evaluated by the
// sweep engine from one declarative spec — the transient cells fan out
// across the thread pool with one shared symbolic factorization per sweep.
//
// Note on the published table: the paper's claim is |error| < 5% for
// RT, CT in [0, 1]. Its RT = 0.1 row group is numerically inconsistent with
// Rt = Rtr/RT = 5 kohm (see DESIGN.md); we therefore print the grid under
// the paper's stated definitions and additionally the low-resistance
// variant (Rt = 50 ohm) that the published RT = 0.1 rows actually match.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/delay_model.h"
#include "sim/builders.h"
#include "sweep/sweep.h"
#include "tline/step_response.h"

using namespace rlcsim;

namespace {

void print_grid(const sweep::SweepEngine& engine,
                const std::vector<std::pair<std::string, double>>& rt_rows) {
  const std::vector<double> cts{0.1, 0.5, 1.0};
  const std::vector<double> lts{1e-5, 1e-6, 1e-7, 1e-8};

  sweep::SweepSpec spec;
  spec.base.system = {500.0, {500.0, 1e-7, 1e-12}, 0.5e-12};
  std::vector<double> rts, cls;
  for (const auto& [label, rt] : rt_rows) rts.push_back(rt);
  for (double ct : cts) cls.push_back(ct * 1e-12);
  spec.axes = {
      sweep::values(sweep::Variable::kLineResistance, rts),
      sweep::values(sweep::Variable::kLineInductance, lts),
      sweep::values(sweep::Variable::kLoadCapacitance, cls),
  };

  const auto model = engine.run(spec, sweep::Analysis::kClosedFormDelay);
  const auto sim = engine.run(spec, sweep::Analysis::kTransientDelay);

  std::printf("\n%-8s %-7s |", "group", "Lt [H]");
  for (double ct : cts) std::printf("   CT=%.1f: eq9/sim[ps] err  |", ct);
  std::printf("\n");
  benchutil::row_rule(100);

  double worst = 0.0, sum = 0.0;
  int count = 0;
  for (std::size_t r = 0; r < rt_rows.size(); ++r) {
    for (std::size_t l = 0; l < lts.size(); ++l) {
      std::printf("%-8s %-7.0e |", rt_rows[r].first.c_str(), lts[l]);
      for (std::size_t c = 0; c < cts.size(); ++c) {
        const std::size_t flat = spec.flat_index({r, l, c});
        const double model_ps = model.values[flat] * 1e12;
        const double sim_ps = sim.values[flat] * 1e12;
        const double err = benchutil::pct(model.values[flat], sim.values[flat]);
        std::printf(" %7.0f/%7.0f %+5.1f%% |", model_ps, sim_ps, err);
        worst = std::max(worst, std::fabs(err));
        sum += std::fabs(err);
        ++count;
      }
      std::printf("\n");
    }
  }
  std::printf("\n|error|: worst %.2f%%, mean %.2f%% over %d cells  (paper claims < 5%%)\n",
              worst, sum / count, count);
  std::printf("[sweep: %zu transient points at %.1f points/sec, %zu threads, "
              "%zu symbolic factorizations]\n",
              sim.values.size(), sim.points_per_second, sim.threads_used,
              sim.symbolic_factorizations);
}

}  // namespace

int main() {
  benchutil::title(
      "TABLE 1 — eq. (9) vs dynamic simulation (MNA, 120-segment ladder)\n"
      "Ct = 1 pF, Rtr = 500 ohm; cells printed as eq9/sim with % error");

  sweep::EngineOptions options;
  options.segments = 120;
  const sweep::SweepEngine engine(options);

  benchutil::section("paper's stated definitions: Rt = Rtr / RT");
  print_grid(engine, {{"RT=0.1", 5000.0}, {"RT=0.5", 1000.0}, {"RT=1.0", 500.0}});

  benchutil::section(
      "low-resistance variant matching the published RT=0.1 row values (Rt = 50 ohm)");
  print_grid(engine, {{"Rt=50", 50.0}});

  // Cross-check the two independent reference engines on a few cells.
  benchutil::section("reference cross-check: MNA ladder vs exact Laplace inversion");
  double worst = 0.0;
  for (double lt : {1e-5, 1e-7, 1e-8}) {
    const tline::GateLineLoad sys{500.0, {1000.0, lt, 1e-12}, 0.5e-12};
    const double mna = sim::simulate_gate_line_delay(sys, 120);
    const double exact = tline::threshold_delay(sys);
    const double dev = benchutil::pct(mna, exact);
    worst = std::max(worst, std::fabs(dev));
    std::printf("Lt=%.0e: mna=%8.1f ps  exact=%8.1f ps  dev=%+.3f%%\n", lt,
                mna * 1e12, exact * 1e12, dev);
  }
  std::printf("worst reference disagreement: %.3f%%\n", worst);
  return 0;
}
