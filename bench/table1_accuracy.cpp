// Reproduces Table 1: eq. (9) versus dynamic circuit simulation for a CMOS
// gate driving a distributed RLC line.
//
// Paper setup: Ct = 1 pF, Rtr = 500 ohm; RT in {0.1, 0.5, 1.0} (so
// Rt = Rtr / RT), CT in {0.1, 0.5, 1.0} (CL = CT * Ct), Lt in
// {1e-5, 1e-6, 1e-7, 1e-8} H. AS/X is replaced by our two reference engines:
// the MNA transient simulator on a 120-segment ladder and numerical
// inversion of the exact transfer function (printed: the MNA number; the
// two agree to < 0.5%, which is also verified here).
//
// Note on the published table: the paper's claim is |error| < 5% for
// RT, CT in [0, 1]. Its RT = 0.1 row group is numerically inconsistent with
// Rt = Rtr/RT = 5 kohm (see DESIGN.md); we therefore print the grid under
// the paper's stated definitions and additionally the low-resistance
// variant (Rt = 50 ohm) that the published RT = 0.1 rows actually match.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/delay_model.h"
#include "sim/builders.h"
#include "tline/step_response.h"

using namespace rlcsim;

namespace {

struct CellResult {
  double model_ps;
  double sim_ps;
  double err_pct;
};

CellResult evaluate(double rt_total, double ct_ratio, double lt) {
  const double rtr = 500.0, ct = 1e-12;
  const tline::GateLineLoad sys{rtr, {rt_total, lt, ct}, ct_ratio * ct};
  const double model = core::rlc_delay(sys);
  const double sim = sim::simulate_gate_line_delay(sys, 120);
  return {model * 1e12, sim * 1e12, benchutil::pct(model, sim)};
}

void print_grid(const std::vector<std::pair<std::string, double>>& rt_rows) {
  const std::vector<double> cts{0.1, 0.5, 1.0};
  const std::vector<double> lts{1e-5, 1e-6, 1e-7, 1e-8};

  std::printf("\n%-8s %-7s |", "group", "Lt [H]");
  for (double ct : cts) std::printf("   CT=%.1f: eq9/sim[ps] err  |", ct);
  std::printf("\n");
  benchutil::row_rule(100);

  double worst = 0.0, sum = 0.0;
  int count = 0;
  for (const auto& [label, rt_total] : rt_rows) {
    for (double lt : lts) {
      std::printf("%-8s %-7.0e |", label.c_str(), lt);
      for (double ct : cts) {
        const CellResult cell = evaluate(rt_total, ct, lt);
        std::printf(" %7.0f/%7.0f %+5.1f%% |", cell.model_ps, cell.sim_ps,
                    cell.err_pct);
        worst = std::max(worst, std::fabs(cell.err_pct));
        sum += std::fabs(cell.err_pct);
        ++count;
      }
      std::printf("\n");
    }
  }
  std::printf("\n|error|: worst %.2f%%, mean %.2f%% over %d cells  (paper claims < 5%%)\n",
              worst, sum / count, count);
}

}  // namespace

int main() {
  benchutil::title(
      "TABLE 1 — eq. (9) vs dynamic simulation (MNA, 120-segment ladder)\n"
      "Ct = 1 pF, Rtr = 500 ohm; cells printed as eq9/sim with % error");

  benchutil::section("paper's stated definitions: Rt = Rtr / RT");
  print_grid({{"RT=0.1", 5000.0}, {"RT=0.5", 1000.0}, {"RT=1.0", 500.0}});

  benchutil::section(
      "low-resistance variant matching the published RT=0.1 row values (Rt = 50 ohm)");
  print_grid({{"Rt=50", 50.0}});

  // Cross-check the two independent reference engines on a few cells.
  benchutil::section("reference cross-check: MNA ladder vs exact Laplace inversion");
  double worst = 0.0;
  for (double lt : {1e-5, 1e-7, 1e-8}) {
    const tline::GateLineLoad sys{500.0, {1000.0, lt, 1e-12}, 0.5e-12};
    const double mna = sim::simulate_gate_line_delay(sys, 120);
    const double exact = tline::threshold_delay(sys);
    const double dev = benchutil::pct(mna, exact);
    worst = std::max(worst, std::fabs(dev));
    std::printf("Lt=%.0e: mna=%8.1f ps  exact=%8.1f ps  dev=%+.3f%%\n", lt,
                mna * 1e12, exact * 1e12, dev);
  }
  std::printf("worst reference disagreement: %.3f%%\n", worst);
  return 0;
}
