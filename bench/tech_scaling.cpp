// Reproduces the Sections III-IV scaling claim: "TL/R increases as R0 C0
// decreases ... as the gate delay decreases, inductance becomes more
// important. Thus, the effects of inductance in next generation design
// methodologies will become fundamentally important as technologies scale."
//
// One fixed wide global wire studied across three buffer generations
// (250/180/130 nm-class presets), plus the extraction-driven version where
// the wire geometry also scales with the node.
// Each node's scaling point costs a numerical repeater optimization, so the
// per-node studies are fanned out across the sweep engine's thread pool.
#include <cstdio>

#include "bench_util.h"
#include "core/scaling.h"
#include "sweep/sweep.h"
#include "tech/nodes.h"

using namespace rlcsim;

namespace {

void print_points(const std::vector<core::ScalingPoint>& points) {
  std::printf("%-8s | %9s | %7s | %12s | %12s | %7s %7s\n", "node", "R0C0[ps]",
              "T_L/R", "delay cost %", "area cost %", "k_rc", "k_rlc");
  benchutil::row_rule(78);
  for (const auto& p : points) {
    std::printf("%-8s | %9.1f | %7.2f | %+11.2f%% | %11.1f%% | %7.1f %7.1f\n",
                p.label.c_str(), p.r0c0 * 1e12, p.t_lr, p.delay_increase,
                p.area_increase, p.k_rc, p.k_rlc);
  }
}

}  // namespace

int main() {
  benchutil::title(
      "SECTION IV — RC-model error vs technology scaling (fixed wire,\n"
      "shrinking buffer intrinsic delay R0 C0)");

  const std::vector<tech::DeviceParams> nodes = tech::all_nodes();
  const sweep::SweepEngine engine;

  benchutil::section("fixed wire: Rt = 100 ohm, Lt = 10 nH, Ct = 2 pF");
  std::vector<core::ScalingPoint> fixed(nodes.size());
  engine.run_custom(nodes.size(),
                    [&](std::size_t i, sweep::SweepEngine::PointContext&) {
                      fixed[i] = core::scaling_study(
                                     {100.0, 10e-9, 2e-12},
                                     {{nodes[i].node_name, tech::as_min_buffer(nodes[i])}})
                                     .front();
                      return 0.0;
                    });
  print_points(fixed);

  benchutil::section("extraction-driven: each node's own 15 mm wide clock wire");
  std::vector<core::ScalingPoint> extracted(nodes.size());
  engine.run_custom(nodes.size(),
                    [&](std::size_t i, sweep::SweepEngine::PointContext&) {
                      const auto pul = tech::extract(tech::wide_clock_wire(nodes[i]));
                      const tline::LineParams line = tline::make_line(pul, 15e-3);
                      extracted[i] = core::scaling_study(
                                         line, {{nodes[i].node_name,
                                                 tech::as_min_buffer(nodes[i])}})
                                         .front();
                      return 0.0;
                    });
  print_points(extracted);

  std::printf(
      "\nExpected: T_L/R and the area cost of RC-only design rise monotonically\n"
      "from 250nm to 130nm in both tables — the paper's closing claim. (The\n"
      "'delay cost' column is the literal eq. 16; see EXPERIMENTS.md.)\n");
  return 0;
}
