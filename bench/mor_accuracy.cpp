// MOR accuracy-vs-speedup frontier: reduced-order (mor/) delay and noise
// against the full MNA transient reference, on the paper's Table-1 grid and
// on a 5-line coupled bus. Emits one JSON document; the EXIT STATUS is the
// accuracy/speedup/determinism gate, so CI fails when the frontier regresses.
//
// What is measured:
//  * Single line — the 36-cell Table-1 grid (Rt in {5000,1000,500} ohm from
//    RT in {0.1,0.5,1.0}, Lt in {1e-5..1e-8} H, CL in {0.1,0.5,1.0} pF;
//    Ct = 1 pF, Rtr = 500 ohm): 50% delay of mor::reduced_gate_delay at
//    q in {2,4,6,8} vs the MNA transient on the SAME 60-segment ladder.
//  * 5-line bus — victim 50% delay (same-/opposite-phase) and quiet-victim
//    peak noise of core::analyze_crosstalk_reduced vs analyze_crosstalk.
//  * Cost — single-thread wall time per point, full vs reduced, plus the
//    linear-solve count proxy (transient steps vs 2q moment solves).
//  * Determinism — a kReducedDelay sweep run at 1 and 3 threads must be
//    bit-identical (the mor::ConductanceReuse seeding contract).
//
// Honest-frontier note: the q >= 4 models sit well inside 1% on the damped
// 2/3 of the grid (zeta >= 0.5) and the mean |error| stays near 1% overall,
// but the wave-dominated corner (zeta ~ 0.04-0.4: Lt = 1e-5 rows, where the
// 50% crossing IS a reflected wavefront) bottoms out at a few percent even
// with transport-delay extraction — a known limit of low-order rational
// approximation, and still sharper than the paper's own 5% claim for its
// two-pole-class model on the same grid. The gates below encode exactly
// that frontier (worst + mean per order) so a regression in EITHER regime
// fails the bench.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "core/crosstalk.h"
#include "mor/response.h"
#include "sim/builders.h"
#include "sweep/sweep.h"

using namespace rlcsim;

namespace {

constexpr int kSegments = 60;
constexpr int kBusSegments = 20;
const std::vector<int> kOrders{2, 4, 6, 8};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ErrorStats {
  double worst = 0.0;
  double sum = 0.0;
  int count = 0;
  void add(double reduced, double reference) {
    const double err = std::fabs(benchutil::pct(reduced, reference));
    worst = std::max(worst, err);
    sum += err;
    ++count;
  }
  double mean() const { return count > 0 ? sum / count : 0.0; }
};

bool gate(const char* name, double value, double limit, bool* pass) {
  const bool ok = value <= limit;
  if (!ok) *pass = false;
  std::printf("    {\"gate\": \"%s\", \"value\": %.3f, \"limit\": %.3f, "
              "\"pass\": %s}",
              name, value, limit, ok ? "true" : "false");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;

  bool pass = true;
  std::printf("{\n");
  benchutil::manifest_json_block("mor_accuracy");
  std::printf("  \"bench\": \"mor_accuracy\",\n");
  std::printf("  \"segments\": %d,\n", kSegments);

  // ---------------------------------------------------- single-line grid
  const std::vector<double> rts{5000.0, 1000.0, 500.0};
  const std::vector<double> lts{1e-5, 1e-6, 1e-7, 1e-8};
  const std::vector<double> cls{0.1e-12, 0.5e-12, 1e-12};

  std::vector<ErrorStats> stats(kOrders.size());
  double full_seconds = 0.0, reduced_seconds = 0.0;
  std::size_t full_points = 0, reduced_points = 0;
  std::size_t transient_solves = 0;

  mor::ConductanceReuse grid_reuse;  // one symbolic G factorization, reused
  for (double rt : rts) {
    for (double lt : lts) {
      for (double cl : cls) {
        const tline::GateLineLoad system{500.0, {rt, lt, 1e-12}, cl};
        double t0 = now_seconds();
        const sim::Circuit circuit = sim::build_gate_line_load(system, kSegments);
        sim::TransientOptions transient;
        transient.t_stop = sim::default_transient_horizon(system);
        const sim::DelayRun run = sim::run_until_crossing(
            circuit, "out", 0.5, transient, "mor_accuracy");
        const double reference = run.crossing;
        transient_solves += run.result.steps_taken;
        full_seconds += now_seconds() - t0;
        ++full_points;

        for (std::size_t qi = 0; qi < kOrders.size(); ++qi) {
          t0 = now_seconds();
          const double reduced = mor::reduced_gate_delay(
              system, kSegments, kOrders[qi], 0.5, &grid_reuse);
          reduced_seconds += now_seconds() - t0;
          ++reduced_points;
          stats[qi].add(reduced, reference);
        }
      }
    }
  }

  const double full_per_point = full_seconds / static_cast<double>(full_points);
  const double reduced_per_point =
      reduced_seconds / static_cast<double>(reduced_points);
  const double speedup = full_per_point / reduced_per_point;
  const double solves_per_transient =
      static_cast<double>(transient_solves) / static_cast<double>(full_points);

  std::printf("  \"single_line\": {\n");
  std::printf("    \"cells\": %zu,\n", full_points);
  std::printf("    \"orders\": [\n");
  for (std::size_t qi = 0; qi < kOrders.size(); ++qi)
    std::printf("      {\"q\": %d, \"worst_pct\": %.3f, \"mean_pct\": %.3f}%s\n",
                kOrders[qi], stats[qi].worst, stats[qi].mean(),
                qi + 1 < kOrders.size() ? "," : "");
  std::printf("    ],\n");
  std::printf("    \"full_ms_per_point\": %.3f,\n", full_per_point * 1e3);
  std::printf("    \"reduced_ms_per_point\": %.3f,\n", reduced_per_point * 1e3);
  std::printf("    \"wall_time_speedup\": %.1f,\n", speedup);
  std::printf("    \"linear_solves_full\": %.0f,\n", solves_per_transient);
  std::printf("    \"linear_solves_reduced_q8\": %d\n", 2 * 8);
  std::printf("  },\n");

  // ------------------------------------------------------------ 5-line bus
  const tline::LineParams bus_line{200.0, 5e-9, 1e-12};
  const tline::CoupledBus bus = tline::make_bus(5, bus_line, 0.4, 0.25);
  core::CrosstalkOptions xt;
  xt.driver_resistance = 100.0;
  xt.load_capacitance = 50e-15;
  xt.segments = kBusSegments;

  double bus_full_seconds = 0.0, bus_reduced_seconds = 0.0;
  double bus_worst_delay_q4up = 0.0, bus_worst_noise_q4up = 0.0;
  std::printf("  \"bus\": {\n");
  std::printf("    \"lines\": %d,\n    \"segments\": %d,\n", bus.lines,
              kBusSegments);
  std::printf("    \"patterns\": [\n");
  const core::SwitchingPattern patterns[] = {
      core::SwitchingPattern::kSamePhase, core::SwitchingPattern::kOppositePhase,
      core::SwitchingPattern::kQuietVictim};
  for (std::size_t p = 0; p < 3; ++p) {
    double t0 = now_seconds();
    const core::CrosstalkMetrics full =
        core::analyze_crosstalk(bus, patterns[p], xt);
    bus_full_seconds += now_seconds() - t0;
    std::printf("      {\"pattern\": \"%s\", \"orders\": [",
                core::switching_pattern_name(patterns[p]));
    for (std::size_t qi = 0; qi < kOrders.size(); ++qi) {
      t0 = now_seconds();
      const core::CrosstalkMetrics reduced =
          core::analyze_crosstalk_reduced(bus, patterns[p], xt, kOrders[qi]);
      bus_reduced_seconds += now_seconds() - t0;
      double delay_err = 0.0, noise_err = 0.0;
      if (full.victim_delay_50 && reduced.victim_delay_50) {
        delay_err =
            benchutil::pct(*reduced.victim_delay_50, *full.victim_delay_50);
        if (kOrders[qi] >= 4)
          bus_worst_delay_q4up =
              std::max(bus_worst_delay_q4up, std::fabs(delay_err));
      }
      if (full.peak_noise > 1e-6) {
        noise_err = benchutil::pct(reduced.peak_noise, full.peak_noise);
        if (kOrders[qi] >= 4 && patterns[p] == core::SwitchingPattern::kQuietVictim)
          bus_worst_noise_q4up =
              std::max(bus_worst_noise_q4up, std::fabs(noise_err));
      }
      std::printf("{\"q\": %d, \"delay_err_pct\": %.3f, \"noise_err_pct\": "
                  "%.3f}%s",
                  kOrders[qi], delay_err, noise_err,
                  qi + 1 < kOrders.size() ? ", " : "");
    }
    std::printf("]}%s\n", p + 1 < 3 ? "," : "");
  }
  const double bus_speedup =
      (bus_full_seconds / 3.0) /
      (bus_reduced_seconds / (3.0 * static_cast<double>(kOrders.size())));
  std::printf("    ],\n");
  std::printf("    \"wall_time_speedup\": %.1f\n", bus_speedup);
  std::printf("  },\n");

  // -------------------------------------------- reduced-sweep determinism
  // A kReducedDelay sweep must be bit-identical at any thread count: every
  // worker replays the ONE recorded G symbolic factorization.
  sweep::SweepSpec spec;
  spec.base.system = {100.0, bus_line, 50e-15};
  spec.base.xtalk.bus_lines = 3;
  spec.base.xtalk.reduction_order = 4;
  const int grid_side = fast ? 2 : 4;
  spec.axes = {
      sweep::linspace(sweep::Variable::kCouplingCapRatio, 0.1, 0.6, grid_side),
      sweep::linspace(sweep::Variable::kMutualRatio, 0.05, 0.3, grid_side),
      sweep::switching_patterns({core::SwitchingPattern::kSamePhase,
                                 core::SwitchingPattern::kOppositePhase}),
  };
  std::vector<double> reference_values;
  bool identical = true;
  std::size_t symbolic_one_thread = 0;
  for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    sweep::EngineOptions options;
    options.threads = threads;
    options.segments = kBusSegments;
    const sweep::SweepEngine engine(options);
    const sweep::SweepResult result =
        engine.run(spec, sweep::Analysis::kReducedDelay);
    if (threads == 1) {
      reference_values = result.values;
      symbolic_one_thread = result.symbolic_factorizations;
    } else {
      identical = result.values == reference_values;  // exact, bit-for-bit
    }
  }
  std::printf("  \"reduced_sweep\": {\"points\": %zu, "
              "\"symbolic_factorizations\": %zu, "
              "\"bit_identical_1_vs_3_threads\": %s},\n",
              spec.size(), symbolic_one_thread, identical ? "true" : "false");
  if (!identical) pass = false;

  // ------------------------------------------------------------------ gates
  std::printf("  \"gates\": [\n");
  gate("q4_worst_pct", stats[1].worst, 5.0, &pass);
  std::printf(",\n");
  gate("q4_mean_pct", stats[1].mean(), 1.2, &pass);
  std::printf(",\n");
  gate("q6_worst_pct", stats[2].worst, 5.5, &pass);
  std::printf(",\n");
  gate("q6_mean_pct", stats[2].mean(), 1.0, &pass);
  std::printf(",\n");
  gate("q8_worst_pct", stats[3].worst, 3.5, &pass);
  std::printf(",\n");
  gate("q8_mean_pct", stats[3].mean(), 0.8, &pass);
  std::printf(",\n");
  gate("bus_delay_q4up_worst_pct", bus_worst_delay_q4up, 3.0, &pass);
  std::printf(",\n");
  gate("bus_noise_q4up_worst_pct", bus_worst_noise_q4up, 10.0, &pass);
  std::printf(",\n");
  // Wall-clock gate: >= 10x fewer seconds per sweep point, reduced vs full.
  // The measured margin is large (the solve-count proxy alone is ~250x), so
  // machine noise cannot flake this.
  gate("min_speedup_x", 10.0 / std::max(speedup, 1e-9), 1.0, &pass);
  std::printf("\n  ],\n");
  benchutil::metrics_json_block();
  std::printf("  \"pass\": %s\n}\n", pass ? "true" : "false");
  return pass ? 0 : 1;
}
