// Shared formatting helpers for the reproduction benches.
//
// Every bench prints (a) the paper's reported numbers where the paper gives
// them, (b) our measured equivalents, and (c) the deviation — so the console
// output of `for b in build/bench/*; do $b; done` IS the reproduction record.
#pragma once

#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "numeric/sparse_batch.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"

// Build provenance, injected per bench target by CMakeLists.txt
// (target_compile_definitions). The fallbacks keep bench TUs compiling in
// ad-hoc builds (e.g. a bare `c++ bench/foo.cpp`) that bypass CMake.
#ifndef RLCSIM_GIT_SHA
#define RLCSIM_GIT_SHA "unknown"
#endif
#ifndef RLCSIM_BUILD_TYPE
#define RLCSIM_BUILD_TYPE "unknown"
#endif
#ifndef RLCSIM_BUILD_CXX_FLAGS
#define RLCSIM_BUILD_CXX_FLAGS ""
#endif
#ifndef RLCSIM_NATIVE_BUILD
#define RLCSIM_NATIVE_BUILD 0
#endif

namespace benchutil {

// Bumped whenever a bench's JSON shape changes incompatibly (keys renamed,
// arrays restructured). tools/perfkit/perfkit_compare refuses to compare
// across schema versions — a shape change must re-bless bench/baselines/.
inline constexpr int kBenchSchemaVersion = 1;

// Run provenance: the `"manifest": {...},` member every BENCH_*.json leads
// with, so any archived result can be traced to the exact code, build, and
// host shape that produced it. Call it right after printing the opening
// `{` of the document. lane_width/default_threads reflect the env knobs
// (RLCSIM_LANES, RLCSIM_THREADS) in effect at emit time; host_cores is the
// physical context that makes cross-machine rate comparisons guesswork —
// which is why perfkit baselines gate machine-independent metrics only.
inline void manifest_json_block(const char* bench_name) {
  std::printf(
      "  \"manifest\": {\"schema_version\": %d, \"bench\": \"%s\", "
      "\"git_sha\": \"%s\", \"build_type\": \"%s\", "
      "\"cxx_flags\": \"%s\", \"native_build\": %s, \"lane_width\": %zu, "
      "\"default_threads\": %zu, \"host_cores\": %u},\n",
      kBenchSchemaVersion, bench_name, RLCSIM_GIT_SHA, RLCSIM_BUILD_TYPE,
      RLCSIM_BUILD_CXX_FLAGS, RLCSIM_NATIVE_BUILD ? "true" : "false",
      rlcsim::numeric::default_lane_width(),
      rlcsim::runtime::default_thread_count(),
      std::thread::hardware_concurrency());
}

// "--threads a,b,c" parser shared by the scaling benches. Every entry must
// be a positive integer: junk, nonpositive, or empty entries throw
// std::invalid_argument naming the offender — a typo'd thread list must not
// silently shrink to the valid subset (or to nothing, which would quietly
// skip the whole scaling study). Benches catch this in main() and exit 2.
inline std::vector<std::size_t> parse_thread_list(const char* arg) {
  std::vector<std::size_t> out;
  std::string text(arg);
  std::size_t pos = 0;
  for (;;) {
    const std::size_t comma = text.find(',', pos);
    const std::string item = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    errno = 0;
    char* end = nullptr;
    const long n = std::strtol(item.c_str(), &end, 10);
    if (item.empty() || end == item.c_str() || *end != '\0' ||
        errno == ERANGE || n <= 0 || n > 65536)
      throw std::invalid_argument("--threads: expected a comma list of "
                                  "positive integers (<= 65536), got \"" +
                                  item + "\" in \"" + text + "\"");
    out.push_back(static_cast<std::size_t>(n));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

// One per-thread-count record of a scaling bench's JSON "runs" array. The
// two determinism-gated benches (sweep_scaling, crosstalk_scaling) share
// this format so their CI gates cannot drift apart.
inline void scaling_run_json(std::size_t threads, double seconds,
                             double points_per_second, double speedup,
                             std::size_t symbolic_factorizations,
                             std::size_t solver_reuse_hits, bool identical,
                             bool last) {
  std::printf("    {\"threads\": %zu, \"seconds\": %.3f, "
              "\"points_per_second\": %.1f, \"speedup_vs_1\": %.2f, "
              "\"symbolic_factorizations\": %zu, \"solver_reuse_hits\": %zu, "
              "\"bit_identical_to_first\": %s}%s\n",
              threads, seconds, points_per_second, speedup,
              symbolic_factorizations, solver_reuse_hits,
              identical ? "true" : "false", last ? "" : ",");
}

// One per-(lanes, threads) record of the batched-sweep bench's JSON "runs"
// array: scaling_run_json's fields plus the lane width, the batch ejection
// counter (SweepResult::ejected_lanes — every ejection is a full scalar
// refactorization, so a nonzero count explains a throughput dip), and the
// batched/scalar point split (SweepResult::batched_points/scalar_points —
// the accounting that keeps the batch's silent scalar fallback honest).
inline void batch_run_json(std::size_t lanes, std::size_t threads,
                           double seconds, double points_per_second,
                           double speedup, std::size_t symbolic_factorizations,
                           std::size_t solver_reuse_hits,
                           std::size_t ejected_lanes,
                           std::size_t batched_points,
                           std::size_t scalar_points, bool identical,
                           bool last) {
  std::printf("    {\"lanes\": %zu, \"threads\": %zu, \"seconds\": %.3f, "
              "\"points_per_second\": %.1f, \"speedup_vs_scalar\": %.2f, "
              "\"symbolic_factorizations\": %zu, \"solver_reuse_hits\": %zu, "
              "\"ejected_lanes\": %zu, \"batched_points\": %zu, "
              "\"scalar_points\": %zu, \"bit_identical_to_first\": %s}%s\n",
              lanes, threads, seconds, points_per_second, speedup,
              symbolic_factorizations, solver_reuse_hits, ejected_lanes,
              batched_points, scalar_points, identical ? "true" : "false",
              last ? "" : ",");
}

// The unified observability block every BENCH_*.json carries: one
// process-wide aggregation of all obs counters and histograms at emit
// time (see README "Observability" for the metric catalog). Printed as a
// `"metrics": {...},` member — call it right before the JSON's final key
// (or with last=true when metrics itself closes the document).
inline void metrics_json_block(bool last = false) {
  std::printf("  \"metrics\": %s%s\n", rlcsim::obs::metrics_json(2).c_str(),
              last ? "" : ",");
}

inline void title(const std::string& text) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", text.c_str());
  std::printf("================================================================\n");
}

inline void section(const std::string& text) {
  std::printf("\n--- %s ---\n", text.c_str());
}

inline void row_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::printf("-");
  std::printf("\n");
}

inline double pct(double value, double reference) {
  return 100.0 * (value - reference) / reference;
}

}  // namespace benchutil
