// Shared formatting helpers for the reproduction benches.
//
// Every bench prints (a) the paper's reported numbers where the paper gives
// them, (b) our measured equivalents, and (c) the deviation — so the console
// output of `for b in build/bench/*; do $b; done` IS the reproduction record.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace benchutil {

inline void title(const std::string& text) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", text.c_str());
  std::printf("================================================================\n");
}

inline void section(const std::string& text) {
  std::printf("\n--- %s ---\n", text.c_str());
}

inline void row_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::printf("-");
  std::printf("\n");
}

inline double pct(double value, double reference) {
  return 100.0 * (value - reference) / reference;
}

}  // namespace benchutil
