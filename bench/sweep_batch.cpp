// Scenario-batched sweep throughput: points/sec at lane widths W = 1/4/8 x
// thread counts 1/3, with bit-identity gates across EVERY (W, threads)
// combination — the batched SIMD solver core's whole contract is "same bits,
// fewer passes" (numeric/sparse_batch.h).
//
// Three workloads cover the layers the batch touches:
//   table1_transient — the Table-1 (driver, load, inductance) grid on the
//       MNA transient path: the one that actually batches (tiles of W
//       points, one refactor/solve per step per tile). Carries the
//       throughput gate: >= 4x points/sec at W=8 vs the scalar W=1 path.
//   crosstalk5_noise — a 5-line coupled-bus noise grid whose coupling axis
//       INCLUDES 0: gates the zero-coupling structural-stamp fix (2
//       symbolic factorizations for the whole sweep) plus determinism.
//   repbus_compose — the repeater-bus optimizer's inner loop (stage-composed
//       victim delay, repbus::compose_bus_chain) riding the batched
//       AnalyticResponse coarse scans: determinism-gated.
//
// Emits one JSON document; exit status is the CI gate (0 = all gates pass,
// 1 = a gate failed, 2 = usage error). --fast gates bit-identity only (CI
// smoke); the full run also gates the >= 4x transient speedup.
//
// The speedup gate is calibrated for the host-tuned build
// (-DRLCSIM_NATIVE=ON): the batch kernels' guarded lane updates
// (`w[lane] = (v != 0) ? w[lane] - l[lane]*v : w[lane]`) only vectorize
// when the target ISA has a packed blend, which baseline x86-64 (SSE2)
// lacks — a portable build runs them scalar and lands near 3x, not 4x.
// CI therefore runs the full bench in the RLCSIM_NATIVE bench job and only
// the --fast identity gates in the portable smoke job.
//
// Usage: sweep_batch [--fast] [--points N] [--segments N] [--repeats N]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sim/builders.h"
#include "sweep/sweep.h"

namespace {

using namespace rlcsim;

struct RunConfig {
  std::size_t lanes;
  std::size_t threads;
};

// (W, threads) grid of the ISSUE gate: scalar reference first.
const std::vector<RunConfig> kConfigs = {
    {1, 1}, {4, 1}, {8, 1}, {1, 3}, {4, 3}, {8, 3},
};

struct WorkloadOutcome {
  bool all_identical = true;
  // points/sec by (lanes, threads), in kConfigs order.
  std::vector<double> pps;
  // batched_points / total by (lanes, threads), in kConfigs order — the
  // fallback-accounting gate input (a batch that silently degrades to
  // scalar shows up here, not just as a throughput dip).
  std::vector<double> batched_fraction;
};

// Runs one (spec, analysis) workload across kConfigs, printing its JSON
// object (named `workload`), and returns the gate inputs. Each config runs
// `repeats` times: throughput is best-of (the container is a shared single
// core, so min-time is the low-noise estimator), and EVERY repeat must be
// bit-identical to the scalar reference — repeats double as a determinism
// stress on the tiled path.
WorkloadOutcome run_workload(const char* workload, const sweep::SweepSpec& spec,
                             sweep::Analysis analysis,
                             const sweep::EngineOptions& base, int repeats,
                             bool last) {
  std::printf("    {\n");
  std::printf("      \"workload\": \"%s\",\n", workload);
  std::printf("      \"analysis\": \"%s\",\n", sweep::analysis_name(analysis));
  std::printf("      \"points\": %zu,\n", spec.size());
  std::printf("      \"segments\": %d,\n", base.segments);
  std::printf("      \"repeats\": %d,\n", repeats);
  std::printf("      \"runs\": [\n");

  WorkloadOutcome outcome;
  std::vector<double> reference;
  double base_pps = 0.0;
  for (std::size_t c = 0; c < kConfigs.size(); ++c) {
    sweep::EngineOptions options = base;
    options.lanes = kConfigs[c].lanes;
    options.threads = kConfigs[c].threads;
    const sweep::SweepEngine engine(options);

    bool identical = true;
    sweep::SweepResult best;
    for (int r = 0; r < repeats; ++r) {
      sweep::SweepResult result = engine.run(spec, analysis);
      if (c == 0 && r == 0) {
        reference = result.values;
      } else {
        // Exact bytes, not tolerances — NaN points must match as NaN too.
        identical = identical &&
                    result.values.size() == reference.size() &&
                    std::memcmp(result.values.data(), reference.data(),
                                reference.size() * sizeof(double)) == 0;
      }
      if (r == 0 || result.points_per_second > best.points_per_second)
        best = std::move(result);
    }
    if (c == 0) base_pps = best.points_per_second;
    outcome.all_identical = outcome.all_identical && identical;
    outcome.pps.push_back(best.points_per_second);
    const std::size_t total = best.batched_points + best.scalar_points;
    outcome.batched_fraction.push_back(
        total > 0 ? static_cast<double>(best.batched_points) /
                        static_cast<double>(total)
                  : 0.0);

    benchutil::batch_run_json(
        kConfigs[c].lanes, kConfigs[c].threads, best.elapsed_seconds,
        best.points_per_second,
        base_pps > 0.0 ? best.points_per_second / base_pps : 1.0,
        best.symbolic_factorizations, best.solver_reuse_hits,
        best.ejected_lanes, best.batched_points, best.scalar_points,
        identical, c + 1 == kConfigs.size());
  }

  std::printf("      ],\n");
  std::printf("      \"all_bit_identical\": %s\n",
              outcome.all_identical ? "true" : "false");
  std::printf("    }%s\n", last ? "" : ",");
  return outcome;
}

// Table-1 style transient grid (the batching workload).
sweep::SweepSpec transient_grid(std::size_t target_points) {
  const int side =
      static_cast<int>(std::cbrt(static_cast<double>(target_points)));
  const int na = std::max(2, side), nb = std::max(2, side);
  const int nc =
      std::max(2, static_cast<int>((target_points + na * nb - 1) / (na * nb)));
  sweep::SweepSpec spec;
  spec.base.system = {500.0, {1000.0, 1e-7, 1e-12}, 0.5e-12};
  spec.axes = {
      sweep::linspace(sweep::Variable::kDriverResistance, 100.0, 1000.0, na),
      sweep::linspace(sweep::Variable::kLoadCapacitance, 0.1e-12, 1e-12, nb),
      sweep::logspace(sweep::Variable::kLineInductance, 1e-8, 1e-6, nc),
  };
  return spec;
}

// 5-line coupled-bus noise grid; the coupling axis deliberately includes 0.
sweep::SweepSpec crosstalk_grid(bool fast) {
  sweep::SweepSpec spec;
  spec.base.system = {500.0, {1000.0, 1e-7, 1e-12}, 0.5e-12};
  spec.base.xtalk.bus_lines = 5;
  spec.base.xtalk.lm_ratio = 0.2;
  spec.axes = {
      sweep::values(sweep::Variable::kCouplingCapRatio,
                    fast ? std::vector<double>{0.0, 0.4}
                         : std::vector<double>{0.0, 0.2, 0.4, 0.6}),
      sweep::values(sweep::Variable::kDriverResistance,
                    fast ? std::vector<double>{300.0, 800.0}
                         : std::vector<double>{200.0, 500.0, 800.0}),
  };
  return spec;
}

// Repeater-bus composed-delay grid (the optimizer's inner-loop evaluation).
sweep::SweepSpec repbus_grid(bool fast) {
  sweep::SweepSpec spec;
  spec.base.system = {100.0, {500.0, 1e-8, 1e-12}, 50e-15};
  spec.base.buffer = {3000.0, 5e-15, 1.0, 0.0};
  spec.base.design = {32.0, 4.0};
  spec.base.xtalk.bus_lines = 3;
  spec.base.xtalk.cc_ratio = 0.4;
  spec.base.xtalk.lm_ratio = 0.25;
  spec.axes = {
      sweep::values(sweep::Variable::kStaggerMode, {0.0, 1.0, 2.0}),
      sweep::values(sweep::Variable::kRepeaterSize,
                    fast ? std::vector<double>{16.0, 48.0}
                         : std::vector<double>{8.0, 16.0, 32.0, 48.0}),
  };
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::size_t target_points = 1000;
  int transient_segments = 25;
  int repeats = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
      target_points = 128;
      repeats = 1;
    } else if (std::strcmp(argv[i], "--points") == 0 && i + 1 < argc) {
      target_points = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--segments") == 0 && i + 1 < argc) {
      transient_segments = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats = std::max(1, static_cast<int>(std::strtol(argv[++i], nullptr, 10)));
    } else {
      std::fprintf(stderr, "sweep_batch: unknown argument \"%s\"\n", argv[i]);
      return 2;
    }
  }

  std::printf("{\n");
  benchutil::manifest_json_block("sweep_batch");
  std::printf("  \"bench\": \"sweep_batch\",\n");
  std::printf("  \"fast\": %s,\n", fast ? "true" : "false");
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"workloads\": [\n");

  // --- table1_transient: the batching path + throughput gate --------------
  const sweep::SweepSpec transient = transient_grid(target_points);
  sweep::EngineOptions transient_options;
  transient_options.segments = transient_segments;
  // Batching needs a shared step grid: one explicit horizon covering every
  // point's default (the slowest scenario decides), with the standard
  // t_stop / 4000 discretization.
  for (std::size_t i = 0; i < transient.size(); ++i)
    transient_options.t_stop =
        std::max(transient_options.t_stop,
                 sim::default_transient_horizon(transient.at(i).system));
  transient_options.dt = transient_options.t_stop / 4000.0;
  const WorkloadOutcome table1 =
      run_workload("table1_transient", transient,
                   sweep::Analysis::kTransientDelay, transient_options, repeats, false);

  // --- crosstalk5_noise: zero-coupling pattern + determinism --------------
  sweep::EngineOptions xt_options;
  xt_options.segments = fast ? 10 : 16;
  const WorkloadOutcome crosstalk =
      run_workload("crosstalk5_noise", crosstalk_grid(fast),
                   sweep::Analysis::kCrosstalkNoise, xt_options, repeats, false);

  // --- repbus_compose: batched analytic scans + determinism ---------------
  sweep::EngineOptions rb_options;
  rb_options.segments = fast ? 8 : 12;
  const WorkloadOutcome repbus =
      run_workload("repbus_compose", repbus_grid(fast),
                   sweep::Analysis::kBusRepeaterDelay, rb_options, repeats, true);

  const bool identical = table1.all_identical && crosstalk.all_identical &&
                         repbus.all_identical;
  // pps entries follow kConfigs order: [0] = (W=1, t=1), [2] = (W=8, t=1).
  const double w8_speedup =
      table1.pps[0] > 0.0 ? table1.pps[2] / table1.pps[0] : 0.0;
  const bool speedup_ok = fast || w8_speedup >= 4.0;

  // Fallback-accounting gate (active in --fast too — it is a correctness
  // property, not a throughput one): on the batch-eligible table1_transient
  // workload every W > 1 config must actually batch >= 90% of its points.
  // Silent per-point scalar fallback used to be invisible; now it fails CI.
  double min_batched_fraction = 1.0;
  for (std::size_t c = 0; c < kConfigs.size(); ++c)
    if (kConfigs[c].lanes > 1)
      min_batched_fraction =
          std::min(min_batched_fraction, table1.batched_fraction[c]);
  const bool batched_ok = min_batched_fraction >= 0.9;

  std::printf("  ],\n");
  benchutil::metrics_json_block();
  std::printf("  \"gates\": {\n");
  std::printf("    \"bit_identical\": %s,\n", identical ? "true" : "false");
  std::printf("    \"transient_speedup_w8_vs_w1\": %.2f,\n", w8_speedup);
  std::printf("    \"speedup_gate\": \"%s\",\n",
              fast ? "skipped (--fast)" : ">= 4.0 at W=8, threads=1");
  std::printf("    \"transient_min_batched_fraction\": %.3f,\n",
              min_batched_fraction);
  std::printf("    \"batched_fraction_gate\": \">= 0.9 at W > 1\",\n");
  std::printf("    \"pass\": %s\n",
              identical && speedup_ok && batched_ok ? "true" : "false");
  std::printf("  }\n");
  std::printf("}\n");
  return identical && speedup_ok && batched_ok ? 0 : 1;
}
