// Reproduces Fig. 4: the repeater-insertion error factors h'opt(T) and
// k'opt(T) versus T_{L/R}, comparing
//   (a) the paper's closed forms, eqs. (14)/(15):
//         h' = [1 + 0.16 T^3]^-0.24,   k' = [1 + 0.18 T^3]^-0.30
//   (b) our numerical minimization of the paper's objective (eq. 19 built on
//       eq. 9), solved in normalized (h', k') space, and
//   (c) ground truth: full repeater-chain MNA simulations at selected T,
//       locating the physical optimum by scanning integer designs.
//
// Reproduction finding (also recorded in EXPERIMENTS.md): our faithful
// reconstruction of the objective yields error factors that decay more
// slowly than the published fit; chain simulation puts the true optimum
// between the two curves, on a very flat minimum. The qualitative claims —
// h', k' = 1 at T = 0, monotonically decreasing, fewer+smaller repeaters as
// inductance grows — reproduce cleanly.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/repeater.h"
#include "core/repeater_numeric.h"
#include "sim/builders.h"

using namespace rlcsim;

int main() {
  benchutil::title("FIG 4 — repeater error factors h'(T), k'(T)");

  std::printf("\n%6s | %9s %9s | %9s %9s | %s\n", "T_L/R", "h' numeric",
              "h' eq(14)", "k' numeric", "k' eq(15)", "closed-form excess delay");
  benchutil::row_rule(86);
  for (double t : {0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0}) {
    const core::NormalizedOptimum opt = core::normalized_optimum(t);
    const double excess = core::closed_form_excess_delay(t);
    std::printf("%6.2f | %9.4f %9.4f | %9.4f %9.4f | %+9.4f%%\n", t, opt.h_factor,
                core::h_error_factor(t), opt.k_factor, core::k_error_factor(t),
                100.0 * excess);
  }
  std::printf(
      "\nPaper: closed form within 0.05%% of its numerical optimum; both start\n"
      "at 1 and decrease. Our objective reconstruction reproduces the shape and\n"
      "the T->0 limit exactly; at large T the published fit sizes repeaters more\n"
      "aggressively than our optimum (see chain-simulation ground truth below).\n");

  benchutil::section(
      "ground truth at T = 5: full chain simulation of candidate sizings");
  // Physical instantiation with k_rc ~ 26 so fractional factors map to
  // meaningful integer section counts (same setup as the integration test).
  const core::MinBuffer buf{3000.0, 5e-15, 1.0, 0.0};
  const tline::LineParams line{450.0, 33.75e-9, 45e-12};
  const core::RepeaterDesign rc = core::bakoglu_rc(line, buf);
  std::printf("line: Rt=450 ohm, Lt=33.75 nH, Ct=45 pF; R0C0=15 ps; T=%.1f\n",
              core::t_lr(line, buf));
  std::printf("Bakoglu RC solution: h=%.1f k=%.1f\n", rc.size, rc.sections);

  struct Candidate {
    const char* name;
    double hf, kf;
  };
  const Candidate candidates[] = {
      {"RC sizing (h'=k'=1)", 1.0, 1.0},
      {"paper eqs. (14)/(15)", core::h_error_factor(5.0), core::k_error_factor(5.0)},
      {"our numeric optimum", 0.0, 0.0},  // filled below
      {"between (0.60,0.55)", 0.60, 0.55},
  };
  const core::NormalizedOptimum opt5 = core::normalized_optimum(5.0);

  std::printf("\n%-22s %8s %4s | %10s | %10s | %12s\n", "sizing", "h", "k",
              "sim [ps]", "model [ps]", "area [h*k]");
  benchutil::row_rule(86);
  for (const Candidate& c : candidates) {
    const double hf = (c.hf == 0.0) ? opt5.h_factor : c.hf;
    const double kf = (c.kf == 0.0) ? opt5.k_factor : c.kf;
    const double h = rc.size * hf;
    const int k = static_cast<int>(std::lround(rc.sections * kf));
    const sim::RepeaterChainSpec spec{line, k, h, buf.r0, buf.c0, 16, 1.0};
    const double sim_delay = sim::simulate_repeater_chain_delay(spec);
    const double model_delay =
        core::total_delay(line, buf, {h, static_cast<double>(k)});
    std::printf("%-22s %8.1f %4d | %10.1f | %10.1f | %12.0f\n", c.name, h, k,
                sim_delay * 1e12, model_delay * 1e12, h * k);
  }
  std::printf(
      "\nReading: the delay minimum is flat (all sizings within ~15%%), but the\n"
      "area differs by up to ~5x — the paper's area/power argument is the\n"
      "robust one, and RLC-aware sizing wins it decisively.\n");
  return 0;
}
