// Crosstalk-sweep throughput scaling: points/sec of a coupled-bus victim
// delay grid versus thread count, with a bit-identity check across thread
// counts — the crosstalk twin of bench/sweep_scaling.
//
// The workload is the coupled-bus tentpole claim: a (Cc/Ct, Lm/Lt, driver)
// grid of 3-line buses evaluated with the full MNA transient engine, every
// bus a K-segment coupled ladder on the sparse path, every thread replaying
// ONE recorded symbolic factorization pair. Patterns are restricted to the
// switching corners (same-/opposite-phase) so every grid value is a real
// delay and the bit-identity comparison is exact. Emits one JSON document;
// the exit status IS the determinism check (0 iff every thread count
// produced the same bits), so CI can gate on it directly.
//
// Usage: crosstalk_scaling [--fast] [--points N] [--threads a,b,c]
//   --fast      64-point grid, thread counts 1,2 (CI smoke run)
//   --points N  approximate grid size (rounded to a 3-axis box x 2 patterns)
//   --threads   comma list of thread counts (default 1,2,4,8)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sweep/sweep.h"

namespace {

using namespace rlcsim;

sweep::SweepSpec grid_of(std::size_t target_points) {
  // Two switching patterns are fixed; split the rest across three axes.
  const std::size_t box = (target_points + 1) / 2;
  const int side = static_cast<int>(std::cbrt(static_cast<double>(box)));
  const int na = std::max(2, side), nb = std::max(2, side);
  const int nc =
      std::max(2, static_cast<int>((box + na * nb - 1) / (na * nb)));

  sweep::SweepSpec spec;
  spec.base.system = {100.0, {200.0, 5e-9, 1e-12}, 50e-15};
  spec.base.xtalk.bus_lines = 3;
  // Coupling ranges stay strictly positive so every grid point shares ONE
  // sparsity pattern (a zero Cc/Lm drops stamps and forks the topology).
  spec.axes = {
      sweep::linspace(sweep::Variable::kCouplingCapRatio, 0.1, 0.6, na),
      sweep::linspace(sweep::Variable::kMutualRatio, 0.05, 0.4, nb),
      sweep::linspace(sweep::Variable::kDriverResistance, 50.0, 400.0, nc),
      sweep::switching_patterns({core::SwitchingPattern::kSamePhase,
                                 core::SwitchingPattern::kOppositePhase}),
  };
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t target_points = 512;
  std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      target_points = 64;
      thread_counts = {1, 2};
    } else if (std::strcmp(argv[i], "--points") == 0 && i + 1 < argc) {
      target_points = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      try {
        thread_counts = benchutil::parse_thread_list(argv[++i]);
      } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "crosstalk_scaling: %s\n", error.what());
        return 2;
      }
    }
  }

  const sweep::SweepSpec spec = grid_of(target_points);
  const std::size_t points = spec.size();

  std::printf("{\n");
  benchutil::manifest_json_block("crosstalk_scaling");
  std::printf("  \"bench\": \"crosstalk_scaling\",\n");
  std::printf("  \"analysis\": \"crosstalk_delay\",\n");
  std::printf("  \"bus_lines\": %d,\n", spec.base.xtalk.bus_lines);
  std::printf("  \"points\": %zu,\n", points);
  std::printf("  \"segments\": 16,\n");
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"runs\": [\n");

  std::vector<double> reference;
  bool all_identical = true;
  double base_pps = 0.0;
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    sweep::EngineOptions options;
    options.threads = thread_counts[t];
    options.segments = 16;  // 3-line bus ~ 150 unknowns: sparse path live
    const sweep::SweepEngine engine(options);
    const sweep::SweepResult result =
        engine.run(spec, sweep::Analysis::kCrosstalkDelay);

    bool identical = true;
    if (t == 0) {
      reference = result.values;
      base_pps = result.points_per_second;
    } else {
      identical = result.values == reference;  // exact, bit-for-bit (no NaNs)
      all_identical = all_identical && identical;
    }

    benchutil::scaling_run_json(
        thread_counts[t], result.elapsed_seconds, result.points_per_second,
        base_pps > 0.0 ? result.points_per_second / base_pps : 1.0,
        result.symbolic_factorizations, result.solver_reuse_hits, identical,
        t + 1 == thread_counts.size());
  }

  std::printf("  ],\n");
  benchutil::metrics_json_block();
  std::printf("  \"all_thread_counts_bit_identical\": %s\n",
              all_identical ? "true" : "false");
  std::printf("}\n");
  return all_identical ? 0 : 1;
}
