// Sweep-engine throughput scaling: points/sec of a transient design-space
// sweep versus thread count, with a bit-identity check across thread counts.
//
// The workload is the tentpole claim of the sweep subsystem: a >= 5k-point
// (driver, load, inductance) grid evaluated with the full MNA transient
// engine on a sparse-path ladder, where each thread replays ONE recorded
// symbolic factorization (see sweep/sweep.h). Emits one JSON document:
// per-thread-count wall time, points/sec, speedup vs 1 thread, symbolic
// factorization counts, and whether every thread count produced the exact
// same bits. Speedups are only meaningful up to the machine's core count —
// the JSON carries hardware_concurrency so readers can judge.
//
// Usage: sweep_scaling [--fast] [--points N] [--threads a,b,c] [--dump F]
//   --fast      512-point grid, thread counts 1,2 (CI smoke run)
//   --points N  approximate grid size (rounded to a 3-axis box)
//   --threads   comma list of thread counts (default 1,2,4,8)
//   --dump F    write the reference run's raw result bytes to file F — the
//               CI tracing-on/off gate cmp's two dumps to prove telemetry
//               cannot perturb results
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sweep/sweep.h"

namespace {

using namespace rlcsim;

sweep::SweepSpec grid_of(std::size_t target_points) {
  // Split the target across three axes: inductance gets the leftovers so the
  // grid lands close to (and at or above) the target.
  const int side = static_cast<int>(std::cbrt(static_cast<double>(target_points)));
  const int na = std::max(2, side), nb = std::max(2, side);
  const int nc = std::max(
      2, static_cast<int>((target_points + na * nb - 1) / (na * nb)));

  sweep::SweepSpec spec;
  spec.base.system = {500.0, {1000.0, 1e-7, 1e-12}, 0.5e-12};
  spec.axes = {
      sweep::linspace(sweep::Variable::kDriverResistance, 100.0, 1000.0, na),
      sweep::linspace(sweep::Variable::kLoadCapacitance, 0.1e-12, 1e-12, nb),
      sweep::logspace(sweep::Variable::kLineInductance, 1e-8, 1e-6, nc),
  };
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t target_points = 5120;
  std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  const char* dump_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      target_points = 512;
      thread_counts = {1, 2};
    } else if (std::strcmp(argv[i], "--points") == 0 && i + 1 < argc) {
      target_points = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--dump") == 0 && i + 1 < argc) {
      dump_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      try {
        thread_counts = benchutil::parse_thread_list(argv[++i]);
      } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "sweep_scaling: %s\n", error.what());
        return 2;
      }
    }
  }

  const sweep::SweepSpec spec = grid_of(target_points);
  const std::size_t points = spec.size();

  std::printf("{\n");
  benchutil::manifest_json_block("sweep_scaling");
  std::printf("  \"bench\": \"sweep_scaling\",\n");
  std::printf("  \"analysis\": \"transient_delay\",\n");
  std::printf("  \"points\": %zu,\n", points);
  std::printf("  \"segments\": 25,\n");
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"runs\": [\n");

  std::vector<double> reference;
  bool all_identical = true;
  double base_pps = 0.0;
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    sweep::EngineOptions options;
    options.threads = thread_counts[t];
    options.segments = 25;  // ~80 unknowns: sparse path, symbolic reuse live
    const sweep::SweepEngine engine(options);
    const sweep::SweepResult result =
        engine.run(spec, sweep::Analysis::kTransientDelay);

    bool identical = true;
    if (t == 0) {
      reference = result.values;
      base_pps = result.points_per_second;
    } else {
      identical = result.values == reference;  // exact, bit-for-bit
      all_identical = all_identical && identical;
    }

    benchutil::scaling_run_json(
        thread_counts[t], result.elapsed_seconds, result.points_per_second,
        base_pps > 0.0 ? result.points_per_second / base_pps : 1.0,
        result.symbolic_factorizations, result.solver_reuse_hits, identical,
        t + 1 == thread_counts.size());
  }

  std::printf("  ],\n");
  benchutil::metrics_json_block();
  std::printf("  \"all_thread_counts_bit_identical\": %s\n",
              all_identical ? "true" : "false");
  std::printf("}\n");

  if (dump_path != nullptr) {
    // Raw reference bytes (not text): the CI tracing-on/off gate compares
    // two dumps with cmp, so any formatting would only blur the identity.
    std::FILE* f = std::fopen(dump_path, "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "sweep_scaling: cannot open --dump path %s\n",
                   dump_path);
      return 2;
    }
    std::fwrite(reference.data(), sizeof(double), reference.size(), f);
    std::fclose(f);
  }
  return all_identical ? 0 : 1;
}
