// Reproduces the paper's eq. (16)/(17) result: the percent increase in total
// propagation delay caused by sizing repeaters with the RC formulas (eq. 11)
// on a line that is actually RLC.
//
// Paper anchors (from eq. 17): ~10% at T_{L/R} = 3, ~20% at T = 5, ~30% at
// T = 10. Two definitions are printed:
//   (a) literal eq. (16): RC sizing vs the paper's closed-form RLC sizing,
//       both evaluated with the eq. (9) delay model;
//   (b) robust form: RC sizing vs the numerically optimized sizing (>= 0 by
//       construction) — the physically meaningful penalty for neglecting
//       inductance.
// EXPERIMENTS.md discusses why (a) deviates from the published anchors under
// our faithful objective reconstruction while (b) reproduces the trend.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/repeater.h"
#include "core/repeater_numeric.h"

using namespace rlcsim;

int main() {
  benchutil::title(
      "EQ 16/17 — % delay increase from RC-only repeater sizing vs T_L/R");

  std::printf("\n%6s | %16s | %20s | %s\n", "T_L/R", "literal eq.(16)",
              "vs numeric optimum", "paper eq.(17) anchor");
  benchutil::row_rule(76);
  struct Anchor {
    double t;
    double paper;
  };
  const Anchor anchors[] = {{3.0, 10.0}, {5.0, 20.0}, {10.0, 30.0}};
  const auto anchor_for = [&](double t) -> const Anchor* {
    for (const Anchor& a : anchors)
      if (a.t == t) return &a;
    return nullptr;
  };

  for (double t : {0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 7.0, 10.0}) {
    const double literal = core::delay_increase_percent(t);
    const double robust = core::rc_sizing_penalty_percent(t);
    const Anchor* a = anchor_for(t);
    if (a != nullptr)
      std::printf("%6.1f | %+15.2f%% | %+19.2f%% | %.0f%%\n", t, literal, robust,
                  a->paper);
    else
      std::printf("%6.1f | %+15.2f%% | %+19.2f%% |\n", t, literal, robust);
  }

  std::printf(
      "\nShape check: the penalty for ignoring inductance is ~0 at T = 0 and\n"
      "grows monotonically — reproduced. Magnitude: our optimum-referenced\n"
      "penalty reaches double digits by T = 10; the paper's 10/20/30%% anchors\n"
      "are measured against its own fitted sizing (see EXPERIMENTS.md).\n");
  return 0;
}
