// Ablation: re-derive the paper's fitted coefficients from OUR reference
// engines, closing the reproduction loop.
//
//   eq. (9):   t' = exp(-a zeta^b) + c zeta, paper {a, b, c} = {2.9, 1.35, 1.48}
//   eq. (14):  h' = [1 + a T^3]^-b,          paper {a, b} = {0.16, 0.24}
//   eq. (15):  k' = [1 + a T^3]^-b,          paper {a, b} = {0.18, 0.30}
//
// The eq. (9) re-fit lands on the paper's constants (our exact solver plays
// the role of AS/X). The error-factor re-fits land on different constants:
// our faithful objective reconstruction has a shallower optimum-decay than
// the published curves (analysis in EXPERIMENTS.md); the functional family
// fits both descriptions well.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/fitting.h"

using namespace rlcsim;

int main() {
  benchutil::title("ABLATION — re-deriving the paper's fitted coefficients");

  benchutil::section("eq. (9) constants from exact transmission-line responses");
  std::vector<double> zetas;
  for (double z = 0.15; z <= 2.5; z += 0.1) zetas.push_back(z);
  const auto delay_samples =
      core::generate_scaled_delay_data(zetas, {0.1, 0.5, 1.0}, {0.1, 0.5, 1.0});
  const auto delay_fit = core::fit_delay_constants(delay_samples);
  std::printf("%-14s %10s %10s\n", "constant", "paper", "re-fit");
  std::printf("%-14s %10.3f %10.3f\n", "exp scale a", 2.9,
              delay_fit.constants.exp_scale);
  std::printf("%-14s %10.3f %10.3f\n", "exp power b", 1.35,
              delay_fit.constants.exp_power);
  std::printf("%-14s %10.3f %10.3f\n", "linear c", 1.48, delay_fit.constants.linear);
  std::printf("fit quality: rms residual %.4f, worst point %.1f%% (the RT/CT\n",
              delay_fit.rms_residual, 100.0 * delay_fit.max_rel_error);
  std::printf("spread of Fig. 2 concentrates at RT=1, CT=0.1 near critical damping)\n");

  benchutil::section("error-factor constants from the numerical repeater optimum");
  std::vector<double> ts;
  for (double t = 0.5; t <= 8.0; t += 0.5) ts.push_back(t);
  const auto factor_samples = core::generate_error_factor_data(ts);
  const auto h_fit = core::fit_h_factor(factor_samples);
  const auto k_fit = core::fit_k_factor(factor_samples);
  std::printf("%-22s %14s %14s\n", "curve", "paper (a, b)", "re-fit (a, b)");
  std::printf("%-22s   (0.16, 0.24)   (%.3f, %.3f)   max dev %.2f%%\n",
              "h'(T) = [1+aT^3]^-b", h_fit.coefficient, h_fit.exponent,
              100.0 * h_fit.max_rel_error);
  std::printf("%-22s   (0.18, 0.30)   (%.3f, %.3f)   max dev %.2f%%\n",
              "k'(T) = [1+aT^3]^-b", k_fit.coefficient, k_fit.exponent,
              100.0 * k_fit.max_rel_error);
  std::printf(
      "\nReading: the eq. (9) constants reproduce nearly exactly. The repeater\n"
      "error-factor family fits our numerical optimum to ~1-2%%, but with\n"
      "different constants than published — the documented deviation.\n");
  return 0;
}
