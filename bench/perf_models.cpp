// google-benchmark microbenchmarks: the cost hierarchy that motivates closed
// forms in EDA flows. Eq. (9) is a handful of flops; the two-pole model adds
// a root solve; exact Laplace inversion costs ~100 complex transfer-function
// evaluations per time point; MNA transient simulation costs thousands of
// linear solves. A timing-driven optimizer evaluates delays millions of
// times, which is why eq. (9) exists.
#include <benchmark/benchmark.h>

#include "core/delay_model.h"
#include "core/repeater.h"
#include "core/repeater_numeric.h"
#include "core/two_pole.h"
#include "tline/rc_line.h"
#include "sim/builders.h"
#include "tline/step_response.h"

using namespace rlcsim;

namespace {

const tline::GateLineLoad& test_system() {
  static const tline::GateLineLoad sys{500.0, {500.0, 1e-7, 1e-12}, 0.5e-12};
  return sys;
}

void BM_ClosedFormDelay(benchmark::State& state) {
  const auto& sys = test_system();
  for (auto _ : state) benchmark::DoNotOptimize(core::rlc_delay(sys));
}
BENCHMARK(BM_ClosedFormDelay);

void BM_ElmoreDelay(benchmark::State& state) {
  const auto& sys = test_system();
  for (auto _ : state)
    benchmark::DoNotOptimize(tline::elmore_delay(
        sys.driver_resistance, sys.line.total_resistance,
        sys.line.total_capacitance, sys.load_capacitance));
}
BENCHMARK(BM_ElmoreDelay);

void BM_TwoPoleDelay(benchmark::State& state) {
  const auto& sys = test_system();
  for (auto _ : state) {
    const core::TwoPoleModel model(sys);
    benchmark::DoNotOptimize(model.threshold_delay(0.5));
  }
}
BENCHMARK(BM_TwoPoleDelay);

void BM_ExactLaplaceDelay(benchmark::State& state) {
  const auto& sys = test_system();
  for (auto _ : state) benchmark::DoNotOptimize(tline::threshold_delay(sys));
}
BENCHMARK(BM_ExactLaplaceDelay);

void BM_MnaTransientDelay(benchmark::State& state) {
  const auto& sys = test_system();
  const int segments = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate_gate_line_delay(sys, segments));
  state.SetLabel(std::to_string(segments) + " segments");
}
BENCHMARK(BM_MnaTransientDelay)->Arg(20)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_RepeaterClosedForm(benchmark::State& state) {
  const tline::LineParams line{450.0, 33.75e-9, 45e-12};
  const core::MinBuffer buf{3000.0, 5e-15, 1.0, 0.0};
  for (auto _ : state)
    benchmark::DoNotOptimize(core::ismail_friedman_rlc(line, buf));
}
BENCHMARK(BM_RepeaterClosedForm);

void BM_RepeaterNumericOptimum(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(core::normalized_optimum(5.0));
  state.SetLabel("grid refine + Nelder-Mead");
}
BENCHMARK(BM_RepeaterNumericOptimum)->Unit(benchmark::kMillisecond);

void BM_TotalDelayEvaluation(benchmark::State& state) {
  const tline::LineParams line{450.0, 33.75e-9, 45e-12};
  const core::MinBuffer buf{3000.0, 5e-15, 1.0, 0.0};
  const core::RepeaterDesign d{100.0, 10.0};
  for (auto _ : state)
    benchmark::DoNotOptimize(core::total_delay(line, buf, d));
}
BENCHMARK(BM_TotalDelayEvaluation);

}  // namespace

BENCHMARK_MAIN();
