// Reproduces Fig. 2: scaled 50% propagation delay t'pd versus zeta for
// several (RT, CT) corners, compared against eq. (9).
//
// The paper plots AS/X simulations for (RT, CT) = (0,0), (1,1), (5,5) over
// zeta in [0, 2] and overlays eq. (9). We regenerate the same series from
// the exact transmission-line response (numerical inversion of eq. (1)) and
// print the curves plus the deviation of eq. (9) from each. The
// (zeta, corner) grid is evaluated through the sweep engine — the numerical
// Laplace inversions fan out across the thread pool.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/delay_model.h"
#include "sweep/sweep.h"
#include "tline/step_response.h"

using namespace rlcsim;

namespace {

// t' of the exact system at a given (zeta, RT, CT), via the Rt = Ct = 1
// normalization (see core/fitting.cpp for the same construction).
double exact_scaled_delay(double zeta, double rt, double ct) {
  const double shape = (rt + ct + rt * ct + 0.5) / std::sqrt(1.0 + ct);
  const double lt = std::pow(0.5 * shape / zeta, 2.0);
  const tline::GateLineLoad sys{rt, tline::LineParams{1.0, lt, 1.0}, ct};
  const double omega_n = 1.0 / std::sqrt(lt * (1.0 + ct));
  return tline::threshold_delay(sys) * omega_n;
}

}  // namespace

int main() {
  benchutil::title(
      "FIG 2 — scaled delay t'pd vs zeta, exact response vs eq. (9)\n"
      "Paper: all curves collapse onto eq. (9); spread grows with RT = CT");

  const std::vector<std::pair<double, double>> corners{{0.0, 0.0}, {1.0, 1.0},
                                                       {5.0, 5.0}};
  std::vector<double> zetas;
  for (double z = 0.1; z <= 2.01; z += 0.1) zetas.push_back(z);

  // Exact responses across the (zeta, corner) grid, in parallel.
  const sweep::SweepEngine engine;
  const auto exact = engine.run_custom(
      zetas.size() * corners.size(),
      [&](std::size_t i, sweep::SweepEngine::PointContext&) {
        const std::size_t zi = i / corners.size(), ci = i % corners.size();
        return exact_scaled_delay(zetas[zi], corners[ci].first, corners[ci].second);
      });

  std::printf("\n%6s %10s | %12s %9s | %12s %9s | %12s %9s\n", "zeta", "eq.(9)",
              "RT=CT=0", "dev%", "RT=CT=1", "dev%", "RT=CT=5", "dev%");
  benchutil::row_rule(96);

  std::vector<double> worst(corners.size(), 0.0);
  for (std::size_t zi = 0; zi < zetas.size(); ++zi) {
    const double model = core::scaled_delay_of(zetas[zi]);
    std::printf("%6.2f %10.4f |", zetas[zi], model);
    for (std::size_t c = 0; c < corners.size(); ++c) {
      const double value = exact.values[zi * corners.size() + c];
      const double dev = benchutil::pct(model, value);
      worst[c] = std::max(worst[c], std::fabs(dev));
      std::printf(" %12.4f %8.2f%% %s", value, dev, c + 1 < corners.size() ? "|" : "");
    }
    std::printf("\n");
  }

  benchutil::section("summary");
  for (std::size_t c = 0; c < corners.size(); ++c)
    std::printf("RT = CT = %.0f : worst |deviation| of eq. (9) = %.2f%%\n",
                corners[c].first, worst[c]);
  std::printf(
      "\nPaper's qualitative claim: t'pd is primarily a function of zeta alone,\n"
      "tightest for RT, CT in [0, 1] (global interconnect regime). Measured:\n"
      "a few %% over most of the sweep; the worst deviations concentrate at\n"
      "zeta ~ 0.5-0.9 on the RT=CT=0 curve (an unloaded line's reflection\n"
      "doubles the far-end wave — exactly the spread the paper's own Fig. 2\n"
      "shows) and on the out-of-range RT=CT=5 curve at small zeta.\n");
  return 0;
}
