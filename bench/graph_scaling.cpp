// Timing-graph engine gates + scaling. Emits one JSON document; the EXIT
// STATUS is the CI gate (0 = pass, 1 = a gate failed, 2 = usage error):
//
//   1. DETERMINISM — evaluating the same graph at 1/2/3 threads returns
//      BIT-IDENTICAL results (every arrival, slew, noise, and chain metric
//      compared as raw bytes). The levelized parallel evaluation owns no
//      shared mutable state, so this is exact, not a tolerance.
//   2. CHAIN EQUIVALENCE — a repeatered-bus chain evaluated as a path of
//      graph nodes reproduces repbus::compose_bus_chain BIT-FOR-BIT across
//      placements x switching patterns (both run the same chain-walk
//      helpers; the graph embedding must not perturb a single operation).
//   3. H-TREE ACCURACY — per-sink arrival and slew of a >= 15-stage clock
//      H-tree (structurally imbalanced, so skew is nonzero) within 3% of
//      the cascaded full-MNA oracle, and the skew disagreement within 3% of
//      the mean sink arrival.
//
// Plus nodes/sec scaling of a deep synthetic fanout tree per thread count.
//
// Usage: graph_scaling [--fast] [--threads a,b,c]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "graph/h_tree.h"
#include "graph/timing_graph.h"
#include "repbus/stage_compose.h"
#include "tline/coupled_bus.h"

using namespace rlcsim;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(double)) == 0);
}

bool identical_chain(const repbus::ComposedChainMetrics& a,
                     const repbus::ComposedChainMetrics& b) {
  if (a.victim_delay_50.has_value() != b.victim_delay_50.has_value())
    return false;
  if (a.victim_delay_50 && !bits_equal(*a.victim_delay_50, *b.victim_delay_50))
    return false;
  return bits_equal(a.peak_noise, b.peak_noise) &&
         bits_equal(a.victim_fire_times, b.victim_fire_times) &&
         a.glitch_fired == b.glitch_fired &&
         a.glitch_depth == b.glitch_depth &&
         a.glitch_boundaries == b.glitch_boundaries;
}

bool identical_graph(const graph::GraphResult& a,
                     const graph::GraphResult& b) {
  if (a.nodes.size() != b.nodes.size() || a.chains.size() != b.chains.size())
    return false;
  for (std::size_t k = 0; k < a.nodes.size(); ++k) {
    const graph::NodeMetrics& m = a.nodes[k];
    const graph::NodeMetrics& n = b.nodes[k];
    if (!bits_equal(m.arrival, n.arrival) ||
        !bits_equal(m.peak_noise, n.peak_noise) ||
        m.slew.size() != n.slew.size())
      return false;
    for (std::size_t s = 0; s < m.slew.size(); ++s) {
      if (m.slew[s].has_value() != n.slew[s].has_value()) return false;
      if (m.slew[s] && !bits_equal(*m.slew[s], *n.slew[s])) return false;
    }
  }
  for (std::size_t c = 0; c < a.chains.size(); ++c)
    if (!identical_chain(a.chains[c], b.chains[c])) return false;
  return true;
}

// The repbus_frontier bus: 5 coupled Table-1 lines, R0 C0 = 15 ps repeaters.
repbus::RepeaterBusSpec chain_spec(repbus::Placement placement, bool fast) {
  repbus::RepeaterBusSpec spec;
  spec.bus = tline::make_bus(5, {500.0, 1e-8, 1e-12}, 0.4, 0.25);
  spec.sections = 4;
  spec.size = 32.0;
  spec.buffer = {3000.0, 5e-15, 1.0, 0.0};
  spec.placement = placement;
  spec.segments_per_section = fast ? 8 : 12;
  return spec;
}

graph::HTreeSpec tree_spec(bool fast) {
  graph::HTreeSpec spec;
  spec.levels = fast ? 4 : 5;  // 15 / 31 stages
  spec.root_line = {150.0, 5e-10, 3e-13};
  spec.taper = 0.6;
  spec.buffer = {3000.0, 5e-15, 1.0, 0.0};
  spec.size = 32.0;
  spec.source_rise = 2e-11;
  spec.segments_per_branch = fast ? 6 : 8;
  spec.sink_capacitance = 2e-14;
  spec.sink_imbalance = 0.15;
  spec.order = 4;
  return spec;
}

bool gate(const char* name, double value, double limit, bool* pass,
          bool last) {
  const bool ok = value <= limit;
  if (!ok) *pass = false;
  std::printf("    {\"gate\": \"%s\", \"value\": %.4f, \"limit\": %.4f, "
              "\"pass\": %s}%s\n",
              name, value, limit, ok ? "true" : "false", last ? "" : ",");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::vector<std::size_t> threads = {1, 2, 3};
  try {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--fast") == 0) {
        fast = true;
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        threads = benchutil::parse_thread_list(argv[++i]);
      } else {
        std::fprintf(stderr, "graph_scaling: unknown argument \"%s\"\n",
                     argv[i]);
        return 2;
      }
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "graph_scaling: %s\n", error.what());
    return 2;
  }

  bool pass = true;
  std::printf("{\n");
  benchutil::manifest_json_block("graph_scaling");
  std::printf("  \"bench\": \"graph_scaling\",\n");
  std::printf("  \"fast\": %s,\n", fast ? "true" : "false");

  // ---------------------------------------- 2. chain equivalence (bitwise)
  const repbus::Placement placements[] = {repbus::Placement::kUniform,
                                          repbus::Placement::kStaggered,
                                          repbus::Placement::kInterleaved};
  const core::SwitchingPattern patterns[] = {
      core::SwitchingPattern::kSamePhase,
      core::SwitchingPattern::kOppositePhase,
      core::SwitchingPattern::kQuietVictim};
  bool chains_identical = true;
  std::printf("  \"chain_equivalence\": [\n");
  for (std::size_t p = 0; p < 3; ++p) {
    const repbus::RepeaterBusSpec spec = chain_spec(placements[p], fast);
    const repbus::StageModels models = repbus::build_stage_models(spec, 4);
    for (std::size_t q = 0; q < 3; ++q) {
      const repbus::ComposedChainMetrics composed =
          repbus::compose_bus_chain(spec, patterns[q], models);
      graph::TimingGraph g;
      g.add_bus_chain(spec, patterns[q], models);
      bool identical = true;
      for (const std::size_t t : threads) {
        const graph::GraphResult result = g.evaluate(t);
        identical = identical && identical_chain(result.chains[0], composed);
      }
      chains_identical = chains_identical && identical;
      std::printf("    {\"placement\": \"%s\", \"pattern\": \"%s\", "
                  "\"bit_identical\": %s}%s\n",
                  repbus::placement_name(placements[p]),
                  core::switching_pattern_name(patterns[q]),
                  identical ? "true" : "false",
                  p == 2 && q == 2 ? "" : ",");
    }
  }
  std::printf("  ],\n");
  if (!chains_identical) pass = false;

  // ------------------------------------- 3. H-tree vs cascaded-MNA oracle
  const graph::HTreeSpec tree = tree_spec(fast);
  const graph::HTreeComparison compare = graph::compare_h_tree(tree);
  std::printf("  \"h_tree\": {\"levels\": %d, \"stages\": %zu, \"sinks\": "
              "%zu,\n",
              tree.levels, compare.stages, compare.sinks);
  std::printf("    \"graph_skew_ps\": %.3f, \"mna_skew_ps\": %.3f,\n",
              compare.graph_skew * 1e12, compare.mna_skew * 1e12);
  std::printf("    \"max_arrival_err_pct\": %.3f, \"max_slew_err_pct\": "
              "%.3f, \"skew_err_pct\": %.3f},\n",
              100.0 * compare.max_arrival_error,
              100.0 * compare.max_slew_error, 100.0 * compare.skew_error);

  // -------------------------- 1. determinism + nodes/sec thread scaling
  // Scaling workload: the H-tree graph (wide levels) evaluated repeatedly.
  graph::HTreeGraph scaling_tree = graph::build_h_tree(tree);
  std::vector<graph::GraphResult> per_thread;
  std::printf("  \"scaling\": [\n");
  double base_pps = 0.0;
  for (std::size_t i = 0; i < threads.size(); ++i) {
    const int repeats = fast ? 3 : 10;
    double best = 1e300;
    graph::GraphResult result;
    for (int r = 0; r < repeats; ++r) {
      const double t0 = now_seconds();
      result = scaling_tree.graph.evaluate(threads[i]);
      best = std::min(best, now_seconds() - t0);
    }
    const double nps =
        static_cast<double>(result.nodes.size()) / std::max(best, 1e-12);
    if (i == 0) base_pps = nps;
    std::printf("    {\"threads\": %zu, \"seconds\": %.6f, "
                "\"nodes_per_second\": %.0f, \"speedup_vs_first\": %.2f}%s\n",
                threads[i], best, nps, base_pps > 0.0 ? nps / base_pps : 1.0,
                i + 1 == threads.size() ? "" : ",");
    per_thread.push_back(std::move(result));
  }
  std::printf("  ],\n");
  bool deterministic = true;
  for (std::size_t i = 1; i < per_thread.size(); ++i)
    deterministic =
        deterministic && identical_graph(per_thread[0], per_thread[i]);
  if (!deterministic) pass = false;
  std::printf("  \"determinism\": {\"bit_identical_across_threads\": %s},\n",
              deterministic ? "true" : "false");
  std::printf("  \"chain_bit_identical\": %s,\n",
              chains_identical ? "true" : "false");

  // ----------------------------------------------------------------- gates
  std::printf("  \"gates\": [\n");
  gate("h_tree_max_arrival_err_pct", 100.0 * compare.max_arrival_error, 3.0,
       &pass, false);
  gate("h_tree_max_slew_err_pct", 100.0 * compare.max_slew_error, 3.0, &pass,
       false);
  gate("h_tree_skew_err_pct", 100.0 * compare.skew_error, 3.0, &pass, false);
  // Boolean gates framed as 0/1 ratios so `value <= limit` reads uniformly.
  gate("chain_equivalence_failures", chains_identical ? 0.0 : 1.0, 0.0, &pass,
       false);
  gate("thread_determinism_failures", deterministic ? 0.0 : 1.0, 0.0, &pass,
       true);
  std::printf("  ],\n");
  benchutil::metrics_json_block();
  std::printf("  \"pass\": %s\n}\n", pass ? "true" : "false");
  return pass ? 0 : 1;
}
