// Reproduces the Section-II claim: "the traditional quadratic dependence of
// the propagation delay on the length of an RC line approaches a linear
// dependence as inductance effects increase."
//
// Delay vs length for three wires spanning the resistive -> inductive
// spectrum; for each, the local scaling exponent p in tpd ~ l^p (from
// successive length doublings) and the two limiting closed forms,
// 0.37 R C l^2 and l sqrt(LC).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/delay_model.h"
#include "tline/rc_line.h"
#include "tline/step_response.h"

using namespace rlcsim;

namespace {

struct Wire {
  const char* name;
  tline::PerUnitLength pul;
};

void sweep(const Wire& wire) {
  benchutil::section(wire.name);
  std::printf("%8s | %10s %10s | %10s %10s | %8s\n", "len[mm]", "exact[ps]",
              "eq9[ps]", "0.37RCl^2", "l*sqrt(LC)", "exp p");
  benchutil::row_rule(72);
  double prev_delay = 0.0, prev_len = 0.0;
  for (double len_mm : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const double len = len_mm * 1e-3;
    const tline::LineParams line = tline::make_line(wire.pul, len);
    const tline::GateLineLoad sys{0.0, line, 0.0};
    const double exact = tline::threshold_delay(sys);
    const double model = core::rlc_delay(sys);
    const double rc_form = tline::paper_rc_limit(line.total_resistance,
                                                 line.total_capacitance);
    const double lc_form = line.time_of_flight();
    double exponent = 0.0;
    if (prev_delay > 0.0)
      exponent = std::log(exact / prev_delay) / std::log(len / prev_len);
    std::printf("%8.1f | %10.1f %10.1f | %10.1f %10.1f |", len_mm, exact * 1e12,
                model * 1e12, rc_form * 1e12, lc_form * 1e12);
    if (prev_delay > 0.0)
      std::printf(" %8.3f\n", exponent);
    else
      std::printf("        -\n");
    prev_delay = exact;
    prev_len = len;
  }
}

}  // namespace

int main() {
  benchutil::title(
      "SECTION II — delay vs length: quadratic (RC) -> linear (LC)\n"
      "p is the local exponent of tpd ~ l^p between successive rows");

  // All wires share L = 0.5 nH/mm and C = 0.2 pF/mm; only the resistance
  // changes, moving the line damping zeta0 = (R l / 4) sqrt(C/L) = R l / 200
  // across the sweep. zeta0 crosses 1 at 1.3 mm / 20 mm / 200 mm
  // respectively — so the three tables sit in the RC, transition, and LC
  // regimes over the same 1-32 mm lengths.
  const Wire wires[] = {
      {"minimum-pitch signal wire: 150 ohm/mm (RC regime)",
       {150e3, 0.5e-6, 0.2e-12 * 1e3}},
      {"global wire: 10 ohm/mm (transition regime)",
       {10e3, 0.5e-6, 0.2e-12 * 1e3}},
      {"wide clock spine: 1 ohm/mm (LC regime)", {1e3, 0.5e-6, 0.2e-12 * 1e3}},
  };
  for (const Wire& w : wires) sweep(w);

  std::printf(
      "\nExpected: top table p -> 2 (and delay tracks 0.37RCl^2); bottom table\n"
      "p -> 1 (and delay tracks l sqrt(LC)); middle table crosses over. The\n"
      "eq. (9) column must track 'exact' within a few %% throughout.\n");
  return 0;
}
